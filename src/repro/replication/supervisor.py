"""Replica-group supervision: surviving repeated failures.

:class:`~repro.replication.machine.ReplicatedJVM` proves the paper's
core protocol for *one* failover: primary dies, cold backup replays the
log, continues as the sole machine.  A real deployment cannot stop
there — after the backup promotes, the system is running without a
spare, and the next fault would be fatal.  :class:`ReplicaGroup` closes
the loop with **checkpoint-based re-integration**:

1. every *generation* (epoch) begins with the primary snapshotting its
   complete state (:mod:`repro.replication.checkpoint`) and shipping it
   through the ordinary log channel to a freshly spun-up backup;
2. the backup reassembles the snapshot, restores it into a new JVM, and
   *verifies the state digest* before adopting it — a torn or corrupted
   transfer is rejected, not silently adopted;
3. once the checkpoint is acknowledged, the log is truncated at the
   checkpoint boundary on both sides: replay starts from the snapshot,
   so the prefix is dead weight and the log no longer grows without
   bound across the run;
4. every shipped record travels inside an
   :class:`~repro.replication.records.EpochRecord` envelope stamped
   with the generation; the receive side fences out records from any
   other generation, so a deposed primary that keeps transmitting
   (split brain) is provably discarded;
5. when the failure detector fires, the backup replays checkpoint +
   post-checkpoint log, resolves the uncertain output exactly-once,
   is promoted, and the cycle restarts at (1) with the next epoch.

The transfer itself is crashable: checkpoint chunks pass through the
same :class:`~repro.replication.commit.CrashInjector` event counter as
log records, so a sweep can kill the primary mid-transfer.  Because
chunk assembly is idempotent and the supervisor retains the previous
generation's basis (checkpoint + fenced execution records) until the
new transfer completes, a mid-transfer death re-runs recovery from the
old basis — replay is deterministic, so the re-promoted replica reaches
the identical state and simply re-ships its snapshot under a fresh
epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.classfile.loader import ClassRegistry
from repro.env.channel import Channel
from repro.env.environment import Environment
from repro.errors import (
    AlreadyRanError,
    PrimaryCrashed,
    RecoveryError,
    ReplicationError,
)
from repro.replication.checkpoint import (
    DEFAULT_CHUNK_BYTES,
    Checkpoint,
    CheckpointAssembler,
    CheckpointChunkRecord,
    first_dispatch_vid,
    restore_checkpoint,
    take_checkpoint,
)
from repro.replication.commit import CrashInjector, EpochFence, LogShipper
from repro.replication.failure import FailureDetector
from repro.replication.machine import ReplicaSettings, parse_log
from repro.replication.metrics import ReplicationMetrics
from repro.replication.ndnatives import BackupNativePolicy, PrimaryNativePolicy
from repro.replication.records import decode_record
from repro.replication.sehandlers import SideEffectHandler, SideEffectManager
from repro.replication.strategy import resolve_strategy
from repro.replication.transport import Transport, make_transport
from repro.runtime.jvm import JVM, JVMConfig, RunHooks, RunResult
from repro.runtime.natives import NativeRegistry
from repro.runtime.stdlib import default_natives


def default_generation_settings(generation: int) -> ReplicaSettings:
    """Per-generation non-determinism sources.  Each replica gets its
    own scheduler seed, clock skew, and entropy stream — replication
    must succeed despite them (restriction R0)."""
    return ReplicaSettings(
        scheduler_seed=101 + 91 * generation,
        clock_offset_ms=13 * generation,
        entropy_seed=7001 + 97 * generation,
    )


class _GroupHeartbeatHooks(RunHooks):
    """Transport-level heartbeats from the active primary's run loop."""

    def __init__(self, channel: Channel) -> None:
        self._channel = channel

    def on_slice_end(self, jvm, thread, reason) -> None:
        self._channel.heartbeat()


@dataclass
class GenerationReport:
    """What happened while one epoch's primary held the role."""

    generation: int
    outcome: str = "pending"
    #: Injector event count at the crash (None when no crash fired).
    crash_event: Optional[int] = None
    #: Total injector events observed this generation.
    events: int = 0
    detection_intervals: Optional[int] = None
    checkpoint_bytes: int = 0
    checkpoint_chunks: int = 0
    primary_metrics: Optional[ReplicationMetrics] = None
    #: Metrics of the recovery replay that *produced* this generation's
    #: primary (None for generation 0's fresh boot).
    recovery_metrics: Optional[ReplicationMetrics] = None


@dataclass
class GroupResult:
    """Outcome of one replica-group run."""

    outcome: str                      # always "completed" on return
    result: RunResult
    generations: List[GenerationReport]
    failures_survived: int

    @property
    def final_generation(self) -> int:
        return self.generations[-1].generation

    @property
    def records_fenced(self) -> int:
        total = 0
        for report in self.generations:
            for metrics in (report.primary_metrics, report.recovery_metrics):
                if metrics is not None:
                    total += metrics.records_fenced
        return total

    @property
    def checkpoint_bytes_shipped(self) -> int:
        return sum(r.checkpoint_bytes for r in self.generations
                   if r.outcome != "completed_in_recovery")


class ReplicaGroup:
    """Primary + backup over a transport, surviving *k* failovers.

    ``crash_schedule`` maps generation -> injector crash event (a dict,
    or a sequence indexed by generation); generations without an entry
    run until program completion.  Each generation gets a fresh
    transport from ``transport`` (a spec string, a
    :class:`~repro.replication.transport.Transport` template whose
    ``fresh()`` re-arms it, or a ``factory(generation)`` callable — the
    callable form is how sweeps give every generation deterministic,
    distinct fault seeds)."""

    def __init__(
        self,
        registry: ClassRegistry,
        natives: Optional[NativeRegistry] = None,
        env: Optional[Environment] = None,
        *,
        strategy="lock_sync",
        crash_schedule=None,
        max_failures: int = 8,
        transport=None,
        settings_for: Optional[Callable[[int], ReplicaSettings]] = None,
        jvm_config: Optional[JVMConfig] = None,
        batch_records: int = 64,
        detector_timeout: int = 3,
        se_handlers: Optional[List[SideEffectHandler]] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        self._strategy = resolve_strategy(strategy)
        self.registry = registry
        self.natives = natives or default_natives()
        self.env = env or Environment()
        self.crash_schedule = crash_schedule
        self.max_failures = max_failures
        self._transport_spec = transport
        self._transport_template_used = False
        self._settings_for = settings_for or default_generation_settings
        self.base_config = jvm_config or JVMConfig()
        self.batch_records = batch_records
        self.detector = FailureDetector(detector_timeout)
        self._extra_se_handlers = list(se_handlers or [])
        self.chunk_bytes = chunk_bytes

        #: Per-generation reports, appended as the run progresses.
        self.reports: List[GenerationReport] = []
        #: The machine that produced the final output (for digest checks).
        self.final_jvm: Optional[JVM] = None

        # --- recovery basis: everything the surviving side knows -------
        #: Last checkpoint fully transferred and digest-verified.
        self._ckpt: Optional[Checkpoint] = None
        #: Epoch that shipped (and therefore stamps) the basis records.
        self._ckpt_epoch = -1
        #: Raw (still epoch-wrapped) records delivered after the basis
        #: checkpoint, captured when that epoch's primary crashed.
        self._exec_raw: List[bytes] = []
        #: Raw leavings of deposed primaries whose transfer never
        #: completed — retained only so the fence can provably discard
        #: them at the next recovery.
        self._stale_raw: List[bytes] = []
        self._ran = False

    @property
    def strategy(self) -> str:
        return self._strategy.name

    # ==================================================================
    # Plumbing
    # ==================================================================
    def _crash_at(self, generation: int) -> Optional[int]:
        schedule = self.crash_schedule
        if schedule is None:
            return None
        if isinstance(schedule, dict):
            return schedule.get(generation)
        if isinstance(schedule, (list, tuple)):
            return (schedule[generation]
                    if generation < len(schedule) else None)
        raise ReplicationError(
            "crash_schedule must be a dict or sequence of crash events"
        )

    def _make_transport(self, generation: int) -> Transport:
        spec = self._transport_spec
        if isinstance(spec, Transport):
            if self._transport_template_used:
                return spec.fresh()
            self._transport_template_used = True
            return spec
        if callable(spec):
            built = spec(generation)
            return (built if isinstance(built, Transport)
                    else make_transport(built))
        return make_transport(spec)

    def _make_se_manager(self) -> SideEffectManager:
        manager = SideEffectManager()
        for handler in self._extra_se_handlers:
            manager.add_handler(handler.fresh())
        return manager

    def _config_for(self, generation: int) -> JVMConfig:
        return replace(
            self.base_config,
            scheduler_seed=self._settings_for(generation).scheduler_seed,
        )

    @staticmethod
    def _finish_metrics(jvm: JVM, metrics: ReplicationMetrics,
                        transport: Optional[Transport] = None) -> None:
        metrics.instructions = jvm.instructions
        metrics.cf_changes = sum(t.br_cnt for t in jvm.scheduler.threads)
        metrics.heavy_ops = jvm.heavy_ops
        metrics.native_calls = jvm.native_calls
        metrics.locks_acquired = jvm.sync.total_acquisitions
        metrics.objects_locked = jvm.sync.monitors_created
        metrics.largest_l_asn = jvm.sync.largest_l_asn
        metrics.reschedules = jvm.scheduler.reschedules
        if transport is not None:
            stats = transport.stats
            metrics.retransmits = stats.retransmits
            metrics.messages_dropped = stats.messages_dropped
            metrics.messages_duplicated = stats.messages_duplicated
            metrics.backpressure_stalls = stats.backpressure_stalls
            metrics.heartbeats_sent = stats.heartbeats_sent
            metrics.heartbeats_delivered = stats.heartbeats_delivered

    # ==================================================================
    # Recovery (build the next primary from the basis)
    # ==================================================================
    def _has_uncertain_tail(self, policy: BackupNativePolicy,
                            jvm: JVM) -> bool:
        return any(
            policy.has_uncertain_tail(t.vid) for t in jvm.scheduler.threads
        )

    def _recover(self, generation: int, main_class: str,
                 args: Optional[List[str]]
                 ) -> Tuple[JVM, SideEffectManager, Optional[RunResult],
                            ReplicationMetrics]:
        """Replay the basis into a promoted, quiescent machine.

        Restores the basis checkpoint (or boots from the identical
        initial state when no checkpoint ever completed), fences the
        retained raw log down to the basis epoch, replays it in hold
        mode, resolves the uncertain output tail exactly-once, and
        applies promotion cleanup.  Returns the machine, its side-effect
        manager, the program result if replay ran to completion (the
        recovered machine finished as sole survivor), and the replay's
        metrics."""
        metrics = ReplicationMetrics(role="backup")
        settings = self._settings_for(generation)
        session = self.env.attach(
            f"replica-g{generation}",
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        config = self._config_for(generation)
        se_manager = self._make_se_manager()

        fence = EpochFence(max(self._ckpt_epoch, 0), metrics)
        inner = fence.filter_raw(list(self._exec_raw)
                                 + list(self._stale_raw))

        if self._ckpt is not None:
            jvm = restore_checkpoint(
                self._ckpt, self.registry, self.natives, session, config,
                name=f"replica-g{generation}", se_manager=se_manager,
            )
            metrics.checkpoints_restored += 1
        else:
            jvm = JVM(self.registry, self.natives, session, config,
                      name=f"replica-g{generation}")
            jvm.bootstrap(main_class, args)

        parsed = parse_log(inner)
        for record in parsed.side_effects:
            se_manager.receive(record)
        policy = BackupNativePolicy(
            parsed.results, parsed.intents, se_manager, metrics
        )
        policy.hold_when_drained = True
        jvm.native_policy = policy
        driver = self._strategy.make_backup(parsed, metrics, settings, config)
        driver.install(jvm)
        driver.set_hold(True)
        controller = getattr(driver, "controller", None)
        if controller is not None and hasattr(controller, "tail_gate"):
            controller.tail_gate = policy.has_uncertain_tail
        if (controller is not None and self._ckpt is not None
                and hasattr(controller, "set_resume_vid")):
            controller.set_resume_vid(first_dispatch_vid(jvm))
        jvm.sync.reevaluate_parked()

        result = jvm.run_to_completion(pause_on_starvation=True)
        if result is None and self._has_uncertain_tail(policy, jvm):
            # The paper's uncertain output: intent delivered, marker
            # lost.  Admit exactly that native — the strategy keeps
            # holding everything else — and let test/confirm/re-execute
            # resolve it exactly-once.
            policy.tail_resolution = True
            if controller is not None and hasattr(controller, "starving"):
                controller.starving = False
            jvm.sync.reevaluate_parked()
            result = jvm.run_to_completion(pause_on_starvation=True)
        if result is None and policy.remaining():
            raise RecoveryError(
                f"recovery for generation {generation} stalled with "
                f"{policy.remaining()} unreplayed native record(s)"
            )
        self._promote(jvm, se_manager)
        return jvm, se_manager, result, metrics

    def _promote(self, jvm: JVM, se_manager: SideEffectManager) -> None:
        """Strip replay-era residue before the machine takes the
        primary role (or is checkpointed as one)."""
        # Lock ids are a per-generation naming scheme; the next
        # generation's strategy assigns fresh ones.
        for obj in jvm.heap.objects:
            monitor = getattr(obj, "monitor", None)
            if monitor is not None:
                monitor.l_id = None
        jvm.sync.notify_wakes_all = False
        jvm.scheduler.release_current()
        jvm.scheduler.last_reason = None
        # Volatile environment state (open fds, console position) must
        # be live before the promoted machine touches the environment;
        # no-op if the uncertain-tail path already restored it.
        se_manager.restore(jvm.session)

    # ==================================================================
    # State transfer (sender + receiver halves of re-integration)
    # ==================================================================
    def _adopt_checkpoint(self, channel: Channel,
                          metrics: ReplicationMetrics, generation: int,
                          n_chunks: int, shipper: LogShipper) -> None:
        """The fresh backup's half: reassemble the delivered chunks,
        verify the snapshot restores to the sender's digest, then
        truncate the chunk prefix from the shared log."""
        fence = EpochFence(generation, metrics)
        assembler = CheckpointAssembler()
        checkpoint: Optional[Checkpoint] = None
        for data in fence.filter_raw(channel.backup_log()):
            record = decode_record(data)
            if isinstance(record, CheckpointChunkRecord):
                assembled = assembler.feed(record)
                if assembled is not None:
                    checkpoint = assembled
        if checkpoint is None:
            raise ReplicationError(
                f"checkpoint transfer for generation {generation} was "
                f"acknowledged but never assembled"
            )
        # Digest verification by restore into a scratch machine: the
        # snapshot is adopted only if it reproduces the sender's state.
        verify_session = self.env.attach(f"verify-g{generation}")
        try:
            restore_checkpoint(
                checkpoint, self.registry, self.natives, verify_session,
                self._config_for(generation),
                name=f"verify-g{generation}",
                se_manager=self._make_se_manager(),
            )
        finally:
            verify_session.destroy()
        shipper.truncate_at_checkpoint(n_chunks)
        self._ckpt = checkpoint
        self._ckpt_epoch = generation
        self._exec_raw = []
        self._stale_raw = []

    # ==================================================================
    # The generation loop
    # ==================================================================
    def run(self, main_class: str, args: Optional[List[str]] = None
            ) -> GroupResult:
        """Run under supervision until the program completes, surviving
        every scheduled failure along the way."""
        if self._ran:
            raise AlreadyRanError(
                "ReplicaGroup.run() may only be called once; build a "
                "fresh group for another run"
            )
        self._ran = True
        jvm: Optional[JVM] = None
        se_manager: Optional[SideEffectManager] = None
        recovery_metrics: Optional[ReplicationMetrics] = None
        failures = 0
        generation = 0

        while True:
            if generation > self.max_failures:
                raise ReplicationError(
                    f"replica group exhausted its failover budget "
                    f"({self.max_failures}) — giving up"
                )
            if jvm is None:
                if generation == 0 and self._ckpt is None \
                        and not self._stale_raw:
                    # First boot: identical initial state, no replay.
                    settings = self._settings_for(0)
                    session = self.env.attach(
                        "replica-g0",
                        clock_offset_ms=settings.clock_offset_ms,
                        entropy_seed=settings.entropy_seed,
                    )
                    jvm = JVM(self.registry, self.natives, session,
                              self._config_for(0), name="replica-g0")
                    jvm.bootstrap(main_class, args)
                    se_manager = self._make_se_manager()
                    recovery_metrics = None
                else:
                    jvm, se_manager, recovered, recovery_metrics = \
                        self._recover(generation, main_class, args)
                    if recovered is not None:
                        # The program finished during replay: the
                        # recovered machine is the sole survivor and
                        # its output is final.
                        self._finish_metrics(jvm, recovery_metrics)
                        self.final_jvm = jvm
                        self.reports.append(GenerationReport(
                            generation=generation,
                            outcome="completed_in_recovery",
                            recovery_metrics=recovery_metrics,
                        ))
                        return GroupResult(
                            "completed", recovered, self.reports, failures
                        )

            transport = self._make_transport(generation)
            channel = Channel(batch_records=self.batch_records,
                              transport=transport)
            self.detector.reset(
                source=(lambda t: lambda: t.stats.heartbeats_delivered)(
                    transport
                )
            )
            metrics = ReplicationMetrics(role="primary")
            injector = CrashInjector(self._crash_at(generation))
            shipper = LogShipper(channel, metrics, injector,
                                 epoch=generation)

            report = GenerationReport(generation=generation,
                                      recovery_metrics=recovery_metrics)
            recovery_metrics = None

            # Quiescent snapshot first, then primary instrumentation —
            # the checkpoint must not contain primary-side hooks.
            checkpoint = take_checkpoint(
                jvm, se_manager, generation=generation,
                env_snapshot=self.env.snapshot_stable(),
            )
            chunks = checkpoint.to_chunks(self.chunk_bytes)
            report.checkpoint_bytes = checkpoint.byte_size
            report.checkpoint_chunks = len(chunks)

            jvm.native_policy = PrimaryNativePolicy(
                shipper, metrics, se_manager
            )
            driver = self._strategy.make_primary(
                shipper, metrics, self._settings_for(generation),
                self._config_for(generation),
            )
            driver.install(jvm)
            jvm.run_hooks = _GroupHeartbeatHooks(channel)
            jvm.sync.reevaluate_parked()

            transfer_ok = False
            try:
                for chunk in chunks:
                    shipper.log(chunk)
                    metrics.checkpoint_records += 1
                    metrics.checkpoint_bytes += len(chunk.data)
                shipper.checkpoint_commit()
                self._adopt_checkpoint(
                    channel, metrics, generation, len(chunks), shipper
                )
                transfer_ok = True

                result = jvm.run_to_completion()
                channel.settle()
                self._finish_metrics(jvm, metrics, transport)
                report.outcome = "completed"
                report.events = injector.events
                report.primary_metrics = metrics
                self.reports.append(report)
                transport.close()
                self.final_jvm = jvm
                return GroupResult("completed", result, self.reports,
                                   failures)
            except PrimaryCrashed:
                failures += 1
                self._finish_metrics(jvm, metrics, transport)
                report.outcome = ("crashed" if transfer_ok
                                  else "crashed_in_transfer")
                report.crash_event = injector.events
                report.events = injector.events
                report.primary_metrics = metrics
                # Fail-stop: volatile state and buffered records die
                # with the primary.
                jvm.session.destroy()
                channel.crash_primary()
                report.detection_intervals = self.detector.await_detection()
                raw = channel.backup_log()
                if transfer_ok:
                    # The fresh backup holds checkpoint + post-transfer
                    # records: that is the new recovery basis.
                    self._exec_raw = raw
                    self._stale_raw = []
                else:
                    # Torn transfer: the old basis stands; these
                    # stamped leavings exist only to be fenced.
                    self._stale_raw.extend(raw)
                self.reports.append(report)
                transport.close()
                jvm = None
                se_manager = None
                generation += 1

"""A sharded fleet of replica groups serving open-loop traffic.

The fleet is the paper's architecture scaled out: N independent
:class:`~repro.replication.supervisor.ReplicaGroup`\\ s, each the
primary-backup pair (plus re-integration) for one hash shard of the
keyspace, behind a request router.  Each shard runs the ``db_server``
workload — a key-value server that parks at a safe-point event
(``Server.recv``) whenever its request port is empty — so a shard is
*resumable*: the router delivers a request, pumps the group to the next
quiescent point, and the committed response appears in the shard's
stable response log.

A primary crash inside any pump is absorbed by the group's serving
lifecycle (replay, uncertain-tail resolution, request-port
reconciliation, checkpoint re-arm) while the other shards keep serving;
the fleet only observes it as a latency spike on that shard.

All shard transports register with one
:class:`~repro.replication.transport.TransportMux`, so a group blocking
on an output-commit ack services the *other* groups' transports from
inside its wait loop — one event loop over all connections, no shard
stalled behind another.

Timing is simulated: request service cost is measured in executed
bytecodes and priced through
:class:`~repro.harness.costs.CostModel`, then converted to
milliseconds; open-loop arrivals come from
:mod:`repro.fleet.traffic`.  Queueing is real — a slow (or failing
over) shard builds a backlog that later requests wait behind.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.env.environment import Environment
from repro.errors import ReplicationError
from repro.fleet.degradation import DegradationController
from repro.fleet.metrics import FleetServingMetrics, ShardServingMetrics
from repro.fleet.traffic import (
    Request,
    TrafficSpec,
    generate,
    reference_responses,
)
from repro.harness.costs import CostModel
from repro.replication.config import ReplicationConfig
from repro.replication.supervisor import ReplicaGroup
from repro.replication.transport import Transport, TransportMux, make_transport
from repro.replication.voting import VotingGroup
from repro.workloads import DB_SERVER
from repro.workloads.base import Workload

#: Simulated bytecode-equivalents per millisecond of serving time.
UNITS_PER_MS = 5000.0


def shard_of(key: int, n_shards: int) -> int:
    """Hash-sharding of the keyspace: key -> owning group."""
    return key % n_shards


def key_of(request_text: str) -> int:
    """Routing key of a ``"<rid> <op> <key> [<val>]"`` request."""
    parts = request_text.split()
    if len(parts) < 3:
        raise ReplicationError(
            f"unroutable request (want '<rid> <op> <key> [<val>]'): "
            f"{request_text!r}"
        )
    try:
        return int(parts[2])
    except ValueError as exc:
        raise ReplicationError(
            f"unroutable request, non-integer key: {request_text!r}"
        ) from exc


class Fleet:
    """N shard groups + router + mux, serving one keyspace."""

    def __init__(
        self,
        n_shards: int = 3,
        *,
        workload: Workload = DB_SERVER,
        profile: str = "test",
        config: Optional[ReplicationConfig] = None,
        crash_schedule_for: Optional[Callable[[int], object]] = None,
        cost_model: Optional[CostModel] = None,
        lie_shard: Optional[int] = None,
        transport_for: Optional[Callable[[int], object]] = None,
    ) -> None:
        if n_shards < 1:
            raise ReplicationError("a fleet needs at least one shard")
        self.n_shards = n_shards
        self.workload = workload
        self.profile = profile
        self.port = str(workload.params_for(profile).get("port", "req"))
        self.cost = cost_model or CostModel()
        self.mux = TransportMux()
        base = config or ReplicationConfig()
        self.voting = bool(base.voting)
        if self.voting and crash_schedule_for is not None:
            raise ReplicationError(
                "voting shards convict on evidence, not injected "
                "fail-stop; drop crash_schedule_for (seed a liar with "
                "lie_shard + lie_at instead)"
            )
        if lie_shard is not None and not 0 <= lie_shard < n_shards:
            raise ReplicationError(
                f"lie_shard {lie_shard} out of range for {n_shards} shards"
            )
        registry = workload.compile(profile)

        self.groups: List = []
        self._shard_transports: List[Optional[Transport]] = [None] * n_shards
        for shard in range(n_shards):
            env = Environment()
            workload.prepare_env(env, profile)
            spec = (transport_for(shard) if transport_for is not None
                    else base.transport)
            overrides = {
                "transport": self._muxed_factory(spec, shard),
            }
            if self.voting:
                if lie_shard is not None and shard != lie_shard:
                    # The seeded liar lives on exactly one shard; the
                    # others run honest.
                    overrides["lie_at"] = None
                    overrides["lie_specs"] = ()
                group = VotingGroup(registry, env=env,
                                    config=base.merged(**overrides))
            else:
                if crash_schedule_for is not None:
                    overrides["crash_schedule"] = crash_schedule_for(shard)
                group = ReplicaGroup(registry, env=env,
                                     config=base.merged(**overrides))
            self.groups.append(group)

        #: Graceful degradation: one controller subscribed to every
        #: voting shard's MVEE guard; a confirmed engine-correlated
        #: divergence anywhere demotes the whole fleet to the oracle
        #: engine at each shard's next safe-point.
        self.degradation: Optional[DegradationController] = None
        if self.voting:
            self.degradation = DegradationController(self)
            for shard, group in enumerate(self.groups):
                group.on_divergence = (
                    lambda div, s=shard:
                    self.degradation.on_divergence(s, div)
                )
        self._started = False
        #: Per-shard simulated time through which the shard is busy.
        self._busy_until_ms = [0.0] * n_shards

    # ------------------------------------------------------------------
    def _muxed_factory(self, base_spec, shard: int):
        """Wrap a transport spec so every transport any generation of
        this shard builds is registered with the fleet-wide mux (and
        the previous generation's is dropped)."""
        def factory(generation: int) -> Transport:
            if isinstance(base_spec, Transport):
                transport = base_spec.fresh()
            elif callable(base_spec):
                built = base_spec(generation)
                transport = (built if isinstance(built, Transport)
                             else make_transport(built))
            else:
                transport = make_transport(base_spec)
            old = self._shard_transports[shard]
            if old is not None:
                self.mux.unregister(old)
            self.mux.register(transport)
            self._shard_transports[shard] = transport
            return transport
        return factory

    # ------------------------------------------------------------------
    def route(self, request_text: str) -> int:
        return shard_of(key_of(request_text), self.n_shards)

    def start(self, main_class: Optional[str] = None) -> None:
        """Boot and arm every shard group, parked at its request wait."""
        if self._started:
            return
        self._started = True
        for group in self.groups:
            group.start_serving(main_class or self.workload.main_class,
                                port=self.port)

    def submit(self, request_text: str) -> int:
        """Route a request to its shard's port; returns the shard."""
        shard = self.route(request_text)
        self.groups[shard].submit(request_text)
        return shard

    # ------------------------------------------------------------------
    def serve_open_loop(
        self,
        traffic: Union[TrafficSpec, Sequence[Request]],
    ) -> FleetServingMetrics:
        """Drive one open-loop traffic run to completion and verify it.

        Requests are delivered in arrival order; each delivery pumps
        the owning shard to its next quiescent point, measuring service
        cost in executed bytecodes (priced through the cost model) and
        folding it into a per-shard busy clock — so queueing delay and
        failover gaps show up in the latency distribution, exactly the
        open-loop behavior a closed-loop driver would hide."""
        self.start()
        requests = (generate(traffic) if isinstance(traffic, TrafficSpec)
                    else list(traffic))
        fm = FleetServingMetrics(n_shards=self.n_shards,
                                 requests_offered=len(requests))
        shards = [ShardServingMetrics(shard=s) for s in range(self.n_shards)]

        for req in requests:
            shard = self.submit(req.text)
            group = self.groups[shard]
            sm = shards[shard]
            sm.requests_routed += 1

            failures_before = group.failures_survived
            jvm_before = group.active_jvm
            instr_before = jvm_before.instructions

            still = group.pump()

            crashes = group.failures_survived - failures_before
            jvm_after = group.active_jvm if still else group.final_jvm
            if jvm_after is jvm_before:
                instr_delta = jvm_after.instructions - instr_before
            else:
                # Failed over: the instruction counter is continuous
                # across checkpoint restore, so the delta still bounds
                # the new work; never let clock go backwards.
                instr_delta = max(
                    0, (jvm_after.instructions if jvm_after is not None
                        else instr_before) - instr_before
                )
            service_units = (
                instr_delta * (self.cost.instr_unit
                               + self.cost.dispatch_rate(
                                   group.base_config.engine))
                + self.cost.request_overhead()
                + crashes * self.cost.failover_gap
            )
            start_ms = max(req.arrival_ms, self._busy_until_ms[shard])
            completion_ms = start_ms + service_units / UNITS_PER_MS
            self._busy_until_ms[shard] = completion_ms
            latency = completion_ms - req.arrival_ms
            sm.latencies_ms.append(latency)
            fm.latencies_ms.append(latency)
            sm.failovers_absorbed += crashes
            if completion_ms > fm.makespan_ms:
                fm.makespan_ms = completion_ms

        self.stop()
        self._account(fm, shards, requests)
        return fm

    def stop(self) -> None:
        """Deliver each shard its stop request and run it down."""
        for shard, group in enumerate(self.groups):
            if group.serve_result is None:
                group.stop_serving(f"stop-{shard} halt {shard}")

    # ------------------------------------------------------------------
    def _account(self, fm: FleetServingMetrics,
                 shards: List[ShardServingMetrics],
                 requests: Sequence[Request]) -> None:
        expected = reference_responses(requests)
        by_shard: List[List[Request]] = [[] for _ in range(self.n_shards)]
        for req in requests:
            by_shard[shard_of(req.key, self.n_shards)].append(req)

        for shard, group in enumerate(self.groups):
            sm = shards[shard]
            responses = group.env.responses
            sm.duplicates = responses.duplicates
            sm.generations = len(group.reports)
            sm.requests_requeued = sum(
                r.recovery_metrics.requests_requeued
                for r in group.reports if r.recovery_metrics is not None
            )
            for report in group.reports:
                # GenerationReport calls it primary_metrics; an era's
                # EraReport calls it proposer_metrics.
                for replica_metrics in (
                    getattr(report, "primary_metrics", None)
                    or getattr(report, "proposer_metrics", None),
                    report.recovery_metrics,
                ):
                    if replica_metrics is not None:
                        sm.absorb_replica_counters(replica_metrics)
            if self.voting:
                # Quorum counters are group-owned, not per-era.
                sm.absorb_replica_counters(group.metrics)
                sm.engine = group.base_config.engine
            for req in by_shard[shard]:
                answer = responses.get(req.rid)
                if answer is None:
                    fm.responses_lost += 1
                elif answer != expected[req.rid]:
                    fm.responses_wrong += 1
                else:
                    sm.responses_committed += 1
            fm.responses_committed += sm.responses_committed
            fm.responses_duplicated += sm.duplicates
            fm.failovers_absorbed += sm.failovers_absorbed
            fm.requests_requeued += sm.requests_requeued
            fm.members_quarantined += sm.members_quarantined
            fm.members_rearmed += sm.members_rearmed
            fm.variant_divergences += sm.variant_divergences
            fm.members_suspected += sm.members_suspected
            fm.suspicions_cleared += sm.suspicions_cleared
            fm.engine_demotions += sm.engine_demotions
            fm.votes_cast += sm.votes_cast
            fm.quorum_certs += sm.quorum_certs
            fm.outputs_gated += sm.outputs_gated
            fm.blocks_compiled += sm.blocks_compiled
            fm.block_cache_hits += sm.block_cache_hits
        if self.degradation is not None and self.degradation.demoted:
            fm.degraded_to = self.degradation.target_engine
        fm.per_shard = shards

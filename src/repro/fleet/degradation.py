"""Fleet-level graceful degradation.

The MVEE guard (``variants="step+slice"``) turns an engine-specific
miscompute into a :class:`~repro.replication.voting.VariantDivergence`:
an outvoted ballot whose execution engine differs from every engine in
the certifying majority.  One shard outvoting the bad engine keeps
*that* shard correct, but the faulty engine is a fleet-wide liability —
every shard running it is one quorum away from the same alarm.

:class:`DegradationController` is the fleet's response policy: it
subscribes to every shard group's ``on_divergence`` hook, and once the
evidence is confirmed (``confirm_after`` alarms; the default 1 treats a
single engine-correlated divergence as proof, which it is — the guard
already filtered out member-correlated faults) it asks **every** shard
to demote itself to the oracle engine.  Demotion is cooperative: each
group lands it at its own next replayable safe-point boundary, via the
same checkpoint-transfer path a quarantine re-arm uses, so no request
is lost or duplicated and the fleet keeps serving throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class DegradationController:
    """Consumes divergence alarms; demotes the whole fleet once."""

    fleet: object
    #: Engine the fleet falls back to ("step" is the reference oracle).
    target_engine: str = "step"
    #: Alarms required before the fleet-wide demotion triggers.
    confirm_after: int = 1
    #: Every (shard, VariantDivergence) observed, in arrival order.
    divergences: List[Tuple[int, object]] = field(default_factory=list)
    demoted: bool = False

    def on_divergence(self, shard: int, divergence) -> None:
        """One shard's MVEE guard fired; demote when confirmed."""
        self.divergences.append((shard, divergence))
        if not self.demoted and len(self.divergences) >= self.confirm_after:
            self.demote()

    def demote(self) -> None:
        """Ask every shard group to rebuild onto the target engine at
        its next safe-point.  Idempotent."""
        if self.demoted:
            return
        self.demoted = True
        for group in self.fleet.groups:
            group.request_demotion(self.target_engine)

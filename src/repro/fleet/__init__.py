"""Sharded replica fleet serving open-loop traffic.

``Fleet`` fronts N :class:`~repro.replication.supervisor.ReplicaGroup`\\ s
(one hash shard of the keyspace each) with a request router and one
:class:`~repro.replication.transport.TransportMux` event loop;
:mod:`~repro.fleet.traffic` generates seeded open-loop load and the
serial reference answers; :mod:`~repro.fleet.metrics` reports latency
percentiles, throughput, and the exactly-once verdict.
"""

from repro.fleet.degradation import DegradationController
from repro.fleet.fleet import UNITS_PER_MS, Fleet, key_of, shard_of
from repro.fleet.metrics import (
    FleetServingMetrics,
    ShardServingMetrics,
    percentile,
)
from repro.fleet.traffic import (
    Request,
    TrafficSpec,
    generate,
    iter_requests,
    reference_responses,
)

__all__ = [
    "DegradationController",
    "Fleet",
    "FleetServingMetrics",
    "Request",
    "ShardServingMetrics",
    "TrafficSpec",
    "UNITS_PER_MS",
    "generate",
    "iter_requests",
    "key_of",
    "percentile",
    "reference_responses",
    "shard_of",
]

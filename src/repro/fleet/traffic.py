"""Open-loop traffic for the shard fleet.

The generator is *open-loop*: arrival times come from a seeded
exponential inter-arrival process at a target QPS and do **not** wait
for responses — exactly the load model under which a failover shows up
as a latency spike plus a queue that the recovered shard must drain,
rather than the clients politely pausing.

Everything is deterministic under the seed: request ids, operations,
keys, values, and arrival times.  The fleet's exactly-once and
correctness checks replay the same schedule through a Python reference
model (:func:`reference_responses`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

#: Operation mix: weights for (op, needs_value).
_OPS = (("put", True), ("get", False), ("add", True), ("get", False))


@dataclass(frozen=True)
class Request:
    """One client request: ``"<rid> <op> <key> [<val>]"`` on the wire."""

    rid: str
    op: str
    key: int
    val: int
    arrival_ms: float

    @property
    def text(self) -> str:
        if self.op in ("put", "add"):
            return f"{self.rid} {self.op} {self.key} {self.val}"
        return f"{self.rid} {self.op} {self.key}"


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of one open-loop traffic run."""

    qps: float = 400.0
    n_requests: int = 500
    n_clients: int = 8
    keyspace: int = 64
    seed: int = 20030622


def generate(spec: TrafficSpec) -> List[Request]:
    """The full request schedule, in arrival order."""
    rng = random.Random(spec.seed)
    mean_gap_ms = 1000.0 / spec.qps
    now = 0.0
    requests: List[Request] = []
    for i in range(spec.n_requests):
        now += rng.expovariate(1.0 / mean_gap_ms) if mean_gap_ms > 0 else 0.0
        client = rng.randrange(spec.n_clients)
        op, needs_value = _OPS[rng.randrange(len(_OPS))]
        key = rng.randrange(spec.keyspace)
        val = rng.randrange(1, 1000) if needs_value else 0
        requests.append(Request(
            rid=f"c{client}r{i:05d}",
            op=op,
            key=key,
            val=val,
            arrival_ms=now,
        ))
    return requests


def iter_requests(spec: TrafficSpec) -> Iterator[Request]:
    return iter(generate(spec))


def reference_responses(requests: Sequence[Request]) -> Dict[str, str]:
    """What a correct fleet must answer, request id -> response text.

    Keys are disjoint across shards (hash-sharding is a partition) and
    each shard serves its requests in arrival order — failover requeues
    preserve order — so applying the ops sequentially in global arrival
    order yields every shard's exact serial history."""
    vals: Dict[int, int] = {}
    expected: Dict[str, str] = {}
    for req in requests:
        if req.op == "put":
            vals[req.key] = req.val
            expected[req.rid] = "stored"
        elif req.op == "add":
            vals[req.key] = vals.get(req.key, 0) + req.val
            expected[req.rid] = f"v={vals[req.key]}"
        else:
            expected[req.rid] = (
                f"v={vals[req.key]}" if req.key in vals else "miss"
            )
    return expected

"""Fleet-level serving metrics: latency, throughput, failovers.

Per-replica event counters live in
:class:`repro.replication.metrics.ReplicationMetrics` (including the
serving counters ``requests_ingested`` / ``responses_committed`` /
``requests_requeued``); this module aggregates them across shards and
adds the traffic-facing view — latency percentiles over the simulated
clock and sustained throughput — priced into simulated time by
:meth:`repro.harness.costs.CostModel.fleet_breakdown`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 on no samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class ShardServingMetrics:
    """One shard group's slice of the traffic."""

    shard: int
    requests_routed: int = 0
    responses_committed: int = 0
    duplicates: int = 0
    failovers_absorbed: int = 0
    generations: int = 1
    requests_requeued: int = 0
    members_quarantined: int = 0
    members_rearmed: int = 0
    variant_divergences: int = 0
    #: Quorum-voting counters (all zero for crash-fault-only shards).
    votes_cast: int = 0
    quorum_certs: int = 0
    outputs_gated: int = 0
    members_suspected: int = 0
    suspicions_cleared: int = 0
    engine_demotions: int = 0
    #: Superinstruction-compiler counters summed over the shard's
    #: replicas (zero unless a member ran ``engine="block"``).
    blocks_compiled: int = 0
    block_cache_hits: int = 0
    #: Execution engine the shard ended the run on ("" = non-voting).
    engine: str = ""
    latencies_ms: List[float] = field(default_factory=list)

    def absorb_replica_counters(self, metrics) -> None:
        """Fold one replica's Byzantine and engine counters into this
        shard's view.  ``getattr`` with a default keeps this a no-op
        for metrics objects predating a counter."""
        for name in ("members_quarantined", "members_rearmed",
                     "variant_divergences", "votes_cast", "quorum_certs",
                     "outputs_gated", "members_suspected",
                     "suspicions_cleared", "engine_demotions",
                     "blocks_compiled", "block_cache_hits"):
            setattr(self, name,
                    getattr(self, name) + getattr(metrics, name, 0))

    def as_dict(self) -> Dict[str, float]:
        return {
            "shard": self.shard,
            "requests_routed": self.requests_routed,
            "responses_committed": self.responses_committed,
            "duplicates": self.duplicates,
            "failovers_absorbed": self.failovers_absorbed,
            "generations": self.generations,
            "requests_requeued": self.requests_requeued,
            "members_quarantined": self.members_quarantined,
            "members_rearmed": self.members_rearmed,
            "variant_divergences": self.variant_divergences,
            "votes_cast": self.votes_cast,
            "quorum_certs": self.quorum_certs,
            "outputs_gated": self.outputs_gated,
            "members_suspected": self.members_suspected,
            "suspicions_cleared": self.suspicions_cleared,
            "engine_demotions": self.engine_demotions,
            "blocks_compiled": self.blocks_compiled,
            "block_cache_hits": self.block_cache_hits,
            "engine": self.engine,
            "p50_latency_ms": percentile(self.latencies_ms, 50),
            "p99_latency_ms": percentile(self.latencies_ms, 99),
        }


@dataclass
class FleetServingMetrics:
    """The whole fleet's view of one traffic run."""

    n_shards: int = 0
    requests_offered: int = 0
    responses_committed: int = 0
    #: Requests that never got a committed response (must be 0).
    responses_lost: int = 0
    #: Responses committed more than once (must be 0).
    responses_duplicated: int = 0
    #: Responses whose text differs from the serial reference (must be 0).
    responses_wrong: int = 0
    failovers_absorbed: int = 0
    requests_requeued: int = 0
    #: Byzantine-mode counters, summed across shards (all zero for
    #: crash-fault-only fleets).
    members_quarantined: int = 0
    members_rearmed: int = 0
    variant_divergences: int = 0
    votes_cast: int = 0
    quorum_certs: int = 0
    outputs_gated: int = 0
    members_suspected: int = 0
    suspicions_cleared: int = 0
    engine_demotions: int = 0
    #: Superinstruction-compiler counters summed across the fleet.
    blocks_compiled: int = 0
    block_cache_hits: int = 0
    #: Engine the fleet degraded to ("" = never demoted).
    degraded_to: str = ""
    #: Simulated wall-clock of the run (first arrival -> last completion).
    makespan_ms: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    per_shard: List[ShardServingMetrics] = field(default_factory=list)

    @property
    def p50_latency_ms(self) -> float:
        return percentile(self.latencies_ms, 50)

    @property
    def p99_latency_ms(self) -> float:
        return percentile(self.latencies_ms, 99)

    @property
    def throughput_rps(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return self.responses_committed / (self.makespan_ms / 1000.0)

    @property
    def exactly_once(self) -> bool:
        return (self.responses_lost == 0 and self.responses_duplicated == 0
                and self.responses_wrong == 0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_shards": self.n_shards,
            "requests_offered": self.requests_offered,
            "responses_committed": self.responses_committed,
            "responses_lost": self.responses_lost,
            "responses_duplicated": self.responses_duplicated,
            "responses_wrong": self.responses_wrong,
            "failovers_absorbed": self.failovers_absorbed,
            "requests_requeued": self.requests_requeued,
            "members_quarantined": self.members_quarantined,
            "members_rearmed": self.members_rearmed,
            "variant_divergences": self.variant_divergences,
            "votes_cast": self.votes_cast,
            "quorum_certs": self.quorum_certs,
            "outputs_gated": self.outputs_gated,
            "members_suspected": self.members_suspected,
            "suspicions_cleared": self.suspicions_cleared,
            "engine_demotions": self.engine_demotions,
            "blocks_compiled": self.blocks_compiled,
            "block_cache_hits": self.block_cache_hits,
            "degraded_to": self.degraded_to,
            "makespan_ms": round(self.makespan_ms, 3),
            "p50_latency_ms": round(self.p50_latency_ms, 3),
            "p99_latency_ms": round(self.p99_latency_ms, 3),
            "throughput_rps": round(self.throughput_rps, 1),
            "exactly_once": self.exactly_once,
            "per_shard": [s.as_dict() for s in self.per_shard],
        }

"""repro — A Fault-Tolerant Java Virtual Machine (DSN 2003), reproduced.

A from-scratch mini-JVM (bytecode ISA, interpreter, green threads,
monitors, GC, native interface), a MiniJava compiler, and the paper's
primary-backup replication layer with two replica-coordination
strategies: replicated lock synchronization and replicated thread
scheduling.

Quickstart::

    from repro import (
        compile_program, ReplicatedJVM, ReplicationConfig, Environment,
    )

    registry = compile_program(source_text)
    machine = ReplicatedJVM(registry, env=Environment(),
                            config=ReplicationConfig(
                                strategy="thread_sched", crash_at=40))
    result = machine.run("Main")
    assert result.failed_over
"""

from repro.errors import (
    ReproError, CompileError, BytecodeError, VerifyError, ClassFormatError,
    LinkageError, NativeError, RestrictionViolation, UncaughtJavaException,
    DeadlockError, ReplicationError, RecoveryError, PrimaryCrashed,
    TransportError, AlreadyRanError,
)
from repro.env import Environment, Channel
from repro.minijava import compile_program
from repro.runtime import (
    JVM, JVMConfig, RunResult, default_natives, new_program_registry,
)
from repro.replication import (
    ReplicatedJVM, FailoverResult, ReplicaSettings, ReplicationConfig,
    run_unreplicated,
    ReplicaGroup, GroupResult, GenerationReport,
    SideEffectHandler,
    CoordinationStrategy, register_strategy, strategy_names,
    Transport, InMemoryTransport, FaultyTransport, SocketTransport,
    FaultProfile, FAULT_PROFILES,
)
from repro.workloads import ALL_WORKLOADS, BY_NAME
from repro.harness import CostModel, DEFAULT_COST_MODEL, get_all_runs

__version__ = "1.0.0"

__all__ = [
    "ReproError", "CompileError", "BytecodeError", "VerifyError",
    "ClassFormatError", "LinkageError", "NativeError",
    "RestrictionViolation", "UncaughtJavaException", "DeadlockError",
    "ReplicationError", "RecoveryError", "PrimaryCrashed",
    "TransportError", "AlreadyRanError",
    "Environment", "Channel",
    "compile_program",
    "JVM", "JVMConfig", "RunResult", "default_natives",
    "new_program_registry",
    "ReplicatedJVM", "FailoverResult", "ReplicaSettings",
    "ReplicationConfig",
    "ReplicaGroup", "GroupResult", "GenerationReport",
    "run_unreplicated", "SideEffectHandler",
    "CoordinationStrategy", "register_strategy", "strategy_names",
    "Transport", "InMemoryTransport", "FaultyTransport", "SocketTransport",
    "FaultProfile", "FAULT_PROFILES",
    "ALL_WORKLOADS", "BY_NAME",
    "CostModel", "DEFAULT_COST_MODEL", "get_all_runs",
    "__version__",
]

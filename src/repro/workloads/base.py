"""Workload framework: SPEC JVM98 analogues for the mini-JVM.

Each workload mirrors the *replication-relevant* profile of its SPEC
JVM98 namesake (Table 2 of the paper): how many monitors it acquires,
how many distinct objects it locks, how skewed the acquisitions are,
how many non-deterministic natives it calls, and whether it is
multi-threaded.  Absolute counts are scaled down (the substrate is an
interpreter in an interpreter); the *shape* — which workload stresses
which replication mechanism — is what the benchmarks reproduce.

A workload provides MiniJava source parameterized by a scale profile,
plus an environment setup hook that pre-populates input files (file
reads are the dominant non-deterministic natives in the paper's
benchmarks, and in ours).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.classfile.loader import ClassRegistry
from repro.env.environment import Environment
from repro.minijava import compile_program

#: Scale profiles: "test" keeps unit tests fast; "bench" is the
#: default for the harness and benchmarks.
PROFILES = ("test", "bench")


@dataclass(frozen=True)
class Workload:
    """One benchmark program."""

    name: str
    description: str
    #: profile -> dict of template parameters
    params: Dict[str, Dict[str, int]]
    #: render MiniJava source for a parameter dict
    source: Callable[[Dict[str, int]], str]
    #: populate input files for a parameter dict (may be None)
    setup: Optional[Callable[[Environment, Dict[str, int]], None]] = None
    main_class: str = "Main"
    multithreaded: bool = False

    def params_for(self, profile: str) -> Dict[str, int]:
        if profile not in self.params:
            raise KeyError(
                f"workload {self.name!r} has no profile {profile!r}"
            )
        return dict(self.params[profile])

    def compile(self, profile: str = "test") -> ClassRegistry:
        return compile_program(self.source(self.params_for(profile)))

    def prepare_env(self, env: Environment, profile: str = "test") -> None:
        if self.setup is not None:
            self.setup(env, self.params_for(profile))

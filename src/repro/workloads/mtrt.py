"""``mtrt`` — SPEC JVM98 _227_mtrt analogue.

A multi-threaded ray tracer: worker threads pull scanlines from a
synchronized work queue and shade them against a small sphere scene,
merging per-row checksums into a synchronized accumulator.
Replication profile: the *only* multi-threaded benchmark — the only
one that produces genuine reschedules and contended monitor
acquisitions, and (per the paper's discussion) the case where
replicated lock acquisition can beat replicated thread scheduling.
"""

from __future__ import annotations

from repro.workloads.base import Workload

_SOURCE = """
class Scene {{
    float[] cx; float[] cy; float[] cz; float[] radius; int[] shade;
    int count;

    Scene(int n) {{
        cx = new float[n]; cy = new float[n]; cz = new float[n];
        radius = new float[n]; shade = new int[n];
        count = 0;
    }}

    void addSphere(float x, float y, float z, float r, int s) {{
        cx[count] = x; cy[count] = y; cz[count] = z;
        radius[count] = r; shade[count] = s;
        count = count + 1;
    }}

    // Ray from origin through (dx, dy, 1); returns shade or 0.
    int trace(float dx, float dy) {{
        float dz = 1.0;
        float norm = Math.sqrt(dx * dx + dy * dy + dz * dz);
        dx = dx / norm; dy = dy / norm; dz = dz / norm;
        float best = 1000000.0;
        int hit = 0;
        for (int i = 0; i < count; i++) {{
            float ox = 0.0 - cx[i];
            float oy = 0.0 - cy[i];
            float oz = 0.0 - cz[i];
            float b = ox * dx + oy * dy + oz * dz;
            float c = ox * ox + oy * oy + oz * oz - radius[i] * radius[i];
            float disc = b * b - c;
            if (disc > 0.0) {{
                float t = 0.0 - b - Math.sqrt(disc);
                if (t > 0.001 && t < best) {{
                    best = t;
                    hit = shade[i] + (int) (t * 16.0) % 7;
                }}
            }}
        }}
        return hit;
    }}
}}

class WorkQueue {{
    int next;
    int limit;

    WorkQueue(int limit) {{ this.limit = limit; next = 0; }}

    synchronized int take() {{
        if (next >= limit) {{ return -1; }}
        int row = next;
        next = next + 1;
        return row;
    }}
}}

class Accumulator {{
    int checksum;
    int rows;
    int samples;

    synchronized void tally(int shade) {{
        samples = samples + 1;
        checksum = (checksum + shade * 7) % 1000000007;
    }}

    synchronized void merge(int row, int rowSum) {{
        // Commutative fold keyed by row index: the checksum must not
        // depend on which worker finished first (the workload is
        // race-free, satisfying R4A).
        checksum = (checksum + (row + 1) * 131 + rowSum * 17) % 1000000007;
        rows = rows + 1;
    }}

    synchronized int value() {{ return checksum; }}
    synchronized int rowCount() {{ return rows; }}
}}

class Tracer extends Thread {{
    Scene scene;
    WorkQueue queue;
    Accumulator acc;
    int width;
    int height;

    Tracer(Scene s, WorkQueue q, Accumulator a, int w, int h) {{
        scene = s; queue = q; acc = a; width = w; height = h;
    }}

    void run() {{
        int row = queue.take();
        while (row >= 0) {{
            int rowSum = 0;
            for (int x = 0; x < width; x++) {{
                float dx = (x * 2.0 - width) / width;
                float dy = (row * 2.0 - height) / height;
                int shade = scene.trace(dx, dy);
                acc.tally(shade);
                rowSum = rowSum + shade;
            }}
            acc.merge(row, rowSum);
            row = queue.take();
        }}
    }}
}}

class Main {{
    static void main(String[] args) {{
        int fd = Files.open("mtrt_scene.txt", "r");
        String line = Files.readLine(fd);
        Scene scene = new Scene(32);
        while (!line.equals("")) {{
            // "x y z r shade" as small ints scaled by 10
            int[] vals = new int[5];
            int vi = 0; int cur = 0; int sign = 1; boolean has = false;
            for (int i = 0; i < line.length(); i++) {{
                int c = line.charAt(i);
                if (c == '-') {{ sign = -1; }}
                else if (c >= '0' && c <= '9') {{ cur = cur * 10 + (c - '0'); has = true; }}
                else if (has) {{ vals[vi] = cur * sign; vi = vi + 1; cur = 0; sign = 1; has = false; }}
            }}
            if (has && vi < 5) {{ vals[vi] = cur * sign; vi = vi + 1; }}
            if (vi == 5) {{
                scene.addSphere(vals[0] / 10.0, vals[1] / 10.0,
                    vals[2] / 10.0, vals[3] / 10.0, vals[4]);
            }}
            line = Files.readLine(fd);
        }}
        Files.close(fd);

        WorkQueue queue = new WorkQueue({height});
        Accumulator acc = new Accumulator();
        Tracer[] workers = new Tracer[{threads}];
        for (int i = 0; i < {threads}; i++) {{
            workers[i] = new Tracer(scene, queue, acc, {width}, {height});
        }}
        for (int i = 0; i < {threads}; i++) {{ workers[i].start(); }}
        for (int i = 0; i < {threads}; i++) {{ workers[i].join(); }}
        System.println("mtrt rows=" + acc.rowCount()
            + " checksum=" + acc.value());
    }}
}}
"""


def _source(params):
    return _SOURCE.format(**params)


def _setup(env, params):
    spheres = [
        "0 0 30 8 3", "10 5 40 6 5", "-12 -4 35 7 2", "4 -9 28 4 6",
        "-6 8 45 9 1", "14 -2 50 5 4", "-15 10 55 6 7", "2 12 38 3 2",
    ]
    env.fs.put("mtrt_scene.txt", "\n".join(spheres) + "\n")


WORKLOAD = Workload(
    name="mtrt",
    description="multi-threaded ray tracer over a synchronized work "
                "queue (the only multi-threaded benchmark)",
    params={
        "test": {"width": 12, "height": 8, "threads": 2},
        "bench": {"width": 40, "height": 28, "threads": 2},
    },
    source=_source,
    setup=_setup,
    multithreaded=True,
)

"""``jack`` — SPEC JVM98 _228_jack analogue.

A parser generator run repeatedly over its own input: each iteration
tokenizes a grammar file and builds expression parse trees whose nodes
carry synchronized methods.  Replication profile: the distinguishing
feature in Table 2 is that jack locks far more *distinct objects* than
any other benchmark (every parse node's monitor is acquired once or
twice), with high total acquisitions and many input-file reads.
"""

from __future__ import annotations

from repro.workloads.base import Workload

_SOURCE = """
class Node {{
    int kind;        // 0 literal, 1 add, 2 mul
    int value;
    Node left;
    Node right;

    synchronized int weigh() {{
        if (kind == 0) {{ return value; }}
        int l = left.weigh();
        int r = right.weigh();
        if (kind == 1) {{ return l + r; }}
        return l * r % 65521;
    }}

    int depth() {{
        if (kind == 0) {{ return 1; }}
        int l = left.depth();
        int r = right.depth();
        if (l > r) {{ return l + 1; }}
        return r + 1;
    }}
}}

class Lexer {{
    String input;
    int pos;

    Lexer(String input) {{ this.input = input; pos = 0; }}

    // Returns token kinds: -1 eof, -2 '+', -3 '*', -4 '(', -5 ')',
    // otherwise a non-negative literal value.
    synchronized int next() {{
        while (pos < input.length() && input.charAt(pos) == ' ') {{ pos = pos + 1; }}
        if (pos >= input.length()) {{ return -1; }}
        int c = input.charAt(pos);
        pos = pos + 1;
        if (c == '+') {{ return -2; }}
        if (c == '*') {{ return -3; }}
        if (c == '(') {{ return -4; }}
        if (c == ')') {{ return -5; }}
        int v = c - '0';
        while (pos < input.length()) {{
            int d = input.charAt(pos);
            if (d < '0' || d > '9') {{ break; }}
            v = v * 10 + (d - '0');
            pos = pos + 1;
        }}
        return v;
    }}
}}

class Parser {{
    Lexer lexer;
    int token;
    int nodes;

    Parser(Lexer lexer) {{ this.lexer = lexer; token = lexer.next(); }}

    Node parseExpr() {{
        Node left = parseTerm();
        while (token == -2) {{
            token = lexer.next();
            Node right = parseTerm();
            Node n = newNode(1, 0);
            n.left = left; n.right = right;
            left = n;
        }}
        return left;
    }}

    Node parseTerm() {{
        Node left = parseAtom();
        while (token == -3) {{
            token = lexer.next();
            Node right = parseAtom();
            Node n = newNode(2, 0);
            n.left = left; n.right = right;
            left = n;
        }}
        return left;
    }}

    Node parseAtom() {{
        if (token == -4) {{
            token = lexer.next();
            Node inner = parseExpr();
            if (token == -5) {{ token = lexer.next(); }}
            return inner;
        }}
        int v = token;
        if (v < 0) {{ v = 0; }}
        token = lexer.next();
        return newNode(0, v);
    }}

    Node newNode(int kind, int value) {{
        Node n = new Node();
        n.kind = kind; n.value = value;
        nodes = nodes + 1;
        return n;
    }}
}}

class Main {{
    static void main(String[] args) {{
        int checksum = 0;
        int totalNodes = 0;
        for (int iter = 0; iter < {iterations}; iter++) {{
            int fd = Files.open("jack_input.txt", "r");
            String line = Files.readLine(fd);
            while (!line.equals("")) {{
                Lexer lex = new Lexer(line);
                Parser p = new Parser(lex);
                Node tree = p.parseExpr();
                checksum = (checksum + tree.weigh() + tree.depth() * 131)
                    % 1000000007;
                totalNodes = totalNodes + p.nodes;
                line = Files.readLine(fd);
            }}
            Files.close(fd);
        }}
        System.println("jack nodes=" + totalNodes + " checksum=" + checksum);
    }}
}}
"""


def _source(params):
    return _SOURCE.format(**params)


def _setup(env, params):
    # Generate arithmetic expressions with nested parentheses.
    seed = 99
    lines = []
    for _ in range(params["lines"]):
        seed = (seed * 48271) % 2147483647
        n_terms = 3 + seed % params["terms"]
        parts = []
        for t in range(n_terms):
            seed = (seed * 48271) % 2147483647
            lit = seed % 1000
            if t % 3 == 2:
                parts.append(f"({lit} + {seed % 97})")
            else:
                parts.append(str(lit))
        ops = []
        for i, part in enumerate(parts):
            if i:
                seed = (seed * 48271) % 2147483647
                ops.append("+" if seed % 2 else "*")
            ops.append(part)
        lines.append(" ".join(ops))
    env.fs.put("jack_input.txt", "\n".join(lines) + "\n")


WORKLOAD = Workload(
    name="jack",
    description="parser generator analogue: repeated tokenize/parse "
                "passes (many distinct locked objects)",
    params={
        "test": {"lines": 12, "terms": 6, "iterations": 2},
        "bench": {"lines": 60, "terms": 10, "iterations": 6},
    },
    source=_source,
    setup=_setup,
)

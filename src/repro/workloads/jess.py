"""``jess`` — SPEC JVM98 _202_jess analogue.

An expert-system shell: facts are loaded from a rule file into a
bucket-indexed, synchronized working memory; a forward-chaining engine
repeatedly matches and fires rules, interleaving short monitor-guarded
working-memory operations with unsynchronized rule evaluation —
matching real jess's profile of *many short* lock acquisitions on a
hot monitor.  Replication profile (Table 2): high non-deterministic
native count (one per rule-file line), lock traffic second only to db,
few distinct locked objects, single-threaded.
"""

from __future__ import annotations

from repro.workloads.base import Workload

_SOURCE = """
class Fact {{
    int kind;
    int a;
    int b;
    Fact next;
}}

class WorkingMemory {{
    Fact[] buckets;
    int nbuckets;
    int count;

    WorkingMemory(int nbuckets) {{
        this.nbuckets = nbuckets;
        buckets = new Fact[nbuckets];
    }}

    int bucketOf(int kind, int a) {{
        int h = (kind * 31 + a) % nbuckets;
        if (h < 0) {{ h = h + nbuckets; }}
        return h;
    }}

    synchronized boolean assertFact(int kind, int a, int b) {{
        int idx = bucketOf(kind, a);
        Fact f = buckets[idx];
        while (f != null) {{
            if (f.kind == kind && f.a == a && f.b == b) {{ return false; }}
            f = f.next;
        }}
        Fact nf = new Fact();
        nf.kind = kind; nf.a = a; nf.b = b; nf.next = buckets[idx];
        buckets[idx] = nf;
        count = count + 1;
        return true;
    }}

    synchronized Fact find(int kind, int a) {{
        Fact f = buckets[bucketOf(kind, a)];
        while (f != null) {{
            if (f.kind == kind && f.a == a) {{ return f; }}
            f = f.next;
        }}
        return null;
    }}

    synchronized int size() {{ return count; }}

    synchronized int score() {{
        int s = 0;
        for (int i = 0; i < nbuckets; i++) {{
            Fact f = buckets[i];
            while (f != null) {{
                s = (s + f.kind * 31 + f.a * 7 + f.b) % 1000000007;
                f = f.next;
            }}
        }}
        return s;
    }}
}}

class Engine {{
    WorkingMemory wm;
    int nodes;

    Engine(WorkingMemory wm, int nodes) {{ this.wm = wm; this.nodes = nodes; }}

    // Unsynchronized rule evaluation between working-memory probes:
    // the salience computation real expert shells run per activation.
    int salience(int a, int b) {{
        int s = a * 131 + b;
        for (int i = 0; i < 12; i++) {{
            s = (s * 1103515245 + 12345) >>> 3;
            s = s ^ (s >>> 7);
        }}
        return s & 1023;
    }}

    // Rule: edge(a,b) & edge(b,c) => path(a,c) with salience gating.
    int chainOnce() {{
        int fired = 0;
        for (int a = 0; a < nodes; a++) {{
            Fact e1 = wm.find(1, a);
            if (e1 == null) {{ continue; }}
            Fact e2 = wm.find(1, e1.b);
            if (e2 == null) {{ continue; }}
            int s = salience(a, e2.b);
            if (s > 64) {{
                if (wm.assertFact(2, a, e2.b)) {{ fired = fired + 1; }}
            }}
        }}
        return fired;
    }}
}}

class Main {{
    static void main(String[] args) {{
        WorkingMemory wm = new WorkingMemory(64);
        int fd = Files.open("jess_rules.txt", "r");
        String line = Files.readLine(fd);
        int loaded = 0;
        while (!line.equals("")) {{
            int sep = line.indexOf(" ");
            int a = Strings.substring(line, 0, sep).hashCode() % {nodes};
            int b = Strings.substring(line, sep + 1, line.length()).hashCode() % {nodes};
            if (a < 0) {{ a = -a; }}
            if (b < 0) {{ b = -b; }}
            if (wm.assertFact(1, a, b)) {{ loaded = loaded + 1; }}
            line = Files.readLine(fd);
        }}
        Files.close(fd);

        Engine engine = new Engine(wm, {nodes});
        int fired = 0;
        for (int pass = 0; pass < {passes}; pass++) {{
            fired = fired + engine.chainOnce();
            // Query phase: short probes against the working memory.
            for (int probe = 0; probe < {probes}; probe++) {{
                int key = engine.salience(probe, pass) % {nodes};
                Fact f = wm.find(2, key);
                if (f != null) {{ fired = fired + 1; }}
                f = wm.find(1, key);
                if (f != null) {{ fired = fired + 1; }}
            }}
        }}
        System.println("jess loaded=" + loaded + " facts=" + wm.size()
            + " fired=" + fired + " score=" + wm.score());
    }}
}}
"""


def _source(params):
    return _SOURCE.format(**params)


def _setup(env, params):
    lines = []
    seed = 7
    for _ in range(params["lines"]):
        seed = (seed * 48271) % 2147483647
        a = seed % 37
        seed = (seed * 48271) % 2147483647
        b = seed % 41
        lines.append(f"sym{a} sym{b}")
    env.fs.put("jess_rules.txt", "\n".join(lines) + "\n")


WORKLOAD = Workload(
    name="jess",
    description="forward-chaining expert system over a synchronized "
                "working memory (native-read heavy, hot monitor)",
    params={
        "test": {"lines": 60, "passes": 3, "rounds": 2, "probes": 60,
                 "nodes": 24},
        "bench": {"lines": 700, "passes": 10, "rounds": 2, "probes": 700,
                  "nodes": 40},
    },
    source=_source,
    setup=_setup,
)

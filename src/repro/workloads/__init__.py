"""SPEC JVM98-analogue workloads for the mini-JVM."""

from repro.workloads.base import Workload, PROFILES
from repro.workloads.jess import WORKLOAD as JESS
from repro.workloads.jack import WORKLOAD as JACK
from repro.workloads.compress import WORKLOAD as COMPRESS
from repro.workloads.db import WORKLOAD as DB
from repro.workloads.mpegaudio import WORKLOAD as MPEGAUDIO
from repro.workloads.mtrt import WORKLOAD as MTRT

#: Paper order (Table 2 / Figures 2-4 column order).
ALL_WORKLOADS = (JESS, JACK, COMPRESS, DB, MPEGAUDIO, MTRT)

BY_NAME = {w.name: w for w in ALL_WORKLOADS}

__all__ = [
    "Workload", "PROFILES", "ALL_WORKLOADS", "BY_NAME",
    "JESS", "JACK", "COMPRESS", "DB", "MPEGAUDIO", "MTRT",
]

"""SPEC JVM98-analogue workloads for the mini-JVM."""

from repro.workloads.base import Workload, PROFILES
from repro.workloads.jess import WORKLOAD as JESS
from repro.workloads.jack import WORKLOAD as JACK
from repro.workloads.compress import WORKLOAD as COMPRESS
from repro.workloads.db import WORKLOAD as DB
from repro.workloads.db import SERVER_WORKLOAD as DB_SERVER
from repro.workloads.mpegaudio import WORKLOAD as MPEGAUDIO
from repro.workloads.mtrt import WORKLOAD as MTRT

#: Paper order (Table 2 / Figures 2-4 column order).
ALL_WORKLOADS = (JESS, JACK, COMPRESS, DB, MPEGAUDIO, MTRT)

#: Serving workloads never terminate on their own (they park at a
#: request wait until a router delivers traffic), so they live in
#: their own registry — the Table-2 batch harness iterates BY_NAME
#: and must not pick them up.
SERVING_WORKLOADS = (DB_SERVER,)
SERVING_BY_NAME = {w.name: w for w in SERVING_WORKLOADS}

BY_NAME = {w.name: w for w in ALL_WORKLOADS}

__all__ = [
    "Workload", "PROFILES", "ALL_WORKLOADS", "SERVING_WORKLOADS",
    "BY_NAME", "SERVING_BY_NAME",
    "JESS", "JACK", "COMPRESS", "DB", "DB_SERVER", "MPEGAUDIO", "MTRT",
]

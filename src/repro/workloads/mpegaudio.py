"""``mpegaudio`` — SPEC JVM98 _222_mpegaudio analogue.

An audio-decoder kernel: a polyphase synthesis filterbank (windowed
dot products over a cosine matrix) applied to frames of subband
samples, float-heavy with trig natives for table construction.
Replication profile: almost no monitor traffic and almost no
non-deterministic natives — in the paper it has the *lowest* overhead
under replicated lock acquisition (5%).
"""

from __future__ import annotations

from repro.workloads.base import Workload

_SOURCE = """
class FilterBank {{
    float[] cosTable;     // 32x32 synthesis matrix
    float[] window;       // 512-tap window
    float[] history;

    FilterBank() {{
        cosTable = new float[1024];
        for (int i = 0; i < 32; i++) {{
            for (int k = 0; k < 32; k++) {{
                cosTable[i * 32 + k] =
                    Math.cos((2.0 * i + 1.0) * k * 3.141592653589793 / 64.0);
            }}
        }}
        window = new float[512];
        for (int i = 0; i < 512; i++) {{
            window[i] = Math.sin(3.141592653589793 * i / 512.0) * 0.5;
        }}
        history = new float[512];
    }}

    // One synthesis step over 32 subband samples -> 32 pcm samples.
    float synthesize(float[] subbands, float[] pcm) {{
        // Shift history and matrix the new samples in.
        for (int i = 511; i >= 32; i = i - 1) {{
            history[i] = history[i - 32];
        }}
        for (int i = 0; i < 32; i++) {{
            float acc = 0.0;
            for (int k = 0; k < 32; k++) {{
                acc = acc + cosTable[i * 32 + k] * subbands[k];
            }}
            history[i] = acc;
        }}
        float peak = 0.0;
        for (int i = 0; i < 32; i++) {{
            float acc = 0.0;
            for (int t = 0; t < 16; t++) {{
                acc = acc + history[i + t * 32] * window[i + t * 32];
            }}
            pcm[i] = acc;
            float mag = Math.fabs(acc);
            if (mag > peak) {{ peak = mag; }}
        }}
        return peak;
    }}
}}

class Meter {{
    float peak;
    synchronized void report(float p) {{ if (p > peak) {{ peak = p; }} }}
    synchronized float peakValue() {{ return peak; }}
}}

class Main {{
    static void main(String[] args) {{
        FilterBank bank = new FilterBank();
        Meter meter = new Meter();
        float[] subbands = new float[32];
        float[] pcm = new float[32];
        int fd = Files.open("mpeg_frames.txt", "r");
        String header = Files.readLine(fd);
        Files.close(fd);
        int seed = header.length();

        float energy = 0.0;
        for (int frame = 0; frame < {frames}; frame++) {{
            for (int k = 0; k < 32; k++) {{
                seed = seed * 1103515245 + 12345;
                subbands[k] = ((seed >>> 16) % 2000 - 1000) / 1000.0;
            }}
            float peak = bank.synthesize(subbands, pcm);
            meter.report(peak);
            for (int i = 0; i < 32; i++) {{
                energy = energy + pcm[i] * pcm[i];
            }}
        }}
        int scaled = (int) (energy * 1000.0);
        int peakScaled = (int) (meter.peakValue() * 1000.0);
        System.println("mpegaudio frames=" + {frames}
            + " energyX1000=" + scaled + " peakX1000=" + peakScaled);
    }}
}}
"""


def _source(params):
    return _SOURCE.format(**params)


def _setup(env, params):
    env.fs.put("mpeg_frames.txt", "MPEG-frames-v1\n")


WORKLOAD = Workload(
    name="mpegaudio",
    description="polyphase synthesis filterbank, float-bound "
                "(minimal locks and natives)",
    params={
        "test": {"frames": 4},
        "bench": {"frames": 30},
    },
    source=_source,
    setup=_setup,
)

"""``compress`` — SPEC JVM98 _201_compress analogue.

Lempel-Ziv (LZW) compression of generated data, CPU-bound integer
work.  Replication profile: the fewest monitor acquisitions of all the
benchmarks (a handful of synchronized statistics updates), very few
non-deterministic natives — the workload where both replication
techniques should be cheapest (the paper measures 15% for thread
scheduling; compress's bars are the lowest in Figures 3 and 4).
"""

from __future__ import annotations

from repro.workloads.base import Workload

_SOURCE = """
class Stats {{
    int blocks;
    int inBytes;
    int outCodes;

    synchronized void record(int inLen, int outLen) {{
        blocks = blocks + 1;
        inBytes = inBytes + inLen;
        outCodes = outCodes + outLen;
    }}

    synchronized int ratioPct() {{
        if (inBytes == 0) {{ return 0; }}
        return outCodes * 100 / inBytes;
    }}
}}

class Lzw {{
    // Open-addressed dictionary: key = (prefixCode << 9) | ch
    int[] hashKeys;
    int[] hashCodes;
    int tableSize;
    int nextCode;

    Lzw(int tableSize) {{
        this.tableSize = tableSize;
        hashKeys = new int[tableSize];
        hashCodes = new int[tableSize];
        reset();
    }}

    void reset() {{
        for (int i = 0; i < tableSize; i++) {{ hashKeys[i] = -1; }}
        nextCode = 257;
    }}

    int find(int key) {{
        int slot = (key * 2654435761) >>> 20;
        slot = slot % tableSize;
        if (slot < 0) {{ slot = slot + tableSize; }}
        while (hashKeys[slot] != -1) {{
            if (hashKeys[slot] == key) {{ return hashCodes[slot]; }}
            slot = slot + 1;
            if (slot >= tableSize) {{ slot = 0; }}
        }}
        return -(slot + 1);
    }}

    void put(int slot, int key) {{
        hashKeys[slot] = key;
        hashCodes[slot] = nextCode;
        nextCode = nextCode + 1;
    }}

    // Compress data[0..len); returns number of output codes, and
    // folds each emitted code into the checksum array cell.
    int compress(int[] data, int len, int[] checksum) {{
        reset();
        int out = 0;
        int prefix = data[0];
        for (int i = 1; i < len; i++) {{
            int ch = data[i];
            int key = (prefix << 9) | ch;
            int code = find(key);
            if (code >= 0) {{
                prefix = code;
            }} else {{
                checksum[0] = (checksum[0] * 31 + prefix) % 1000000007;
                out = out + 1;
                if (nextCode < 4096) {{ put(-code - 1, key); }}
                prefix = ch;
            }}
        }}
        checksum[0] = (checksum[0] * 31 + prefix) % 1000000007;
        return out + 1;
    }}
}}

class Main {{
    static void main(String[] args) {{
        int size = {block_size};
        int[] data = new int[size];
        int[] checksum = new int[1];
        Stats stats = new Stats();
        Lzw lzw = new Lzw(8192);

        int seed = Files.size("compress_seed.txt");
        for (int block = 0; block < {blocks}; block++) {{
            // Markov-ish source: runs of repeated symbols compress well.
            int sym = 65;
            for (int i = 0; i < size; i++) {{
                seed = seed * 1103515245 + 12345;
                int r = (seed >>> 24) & 255;
                if (r < 200) {{
                    // keep current symbol (run)
                }} else {{
                    sym = 65 + ((seed >>> 8) % 26 + 26) % 26;
                }}
                data[i] = sym;
            }}
            int out = lzw.compress(data, size, checksum);
            stats.record(size, out);
        }}
        System.println("compress blocks=" + stats.blocks
            + " ratioPct=" + stats.ratioPct()
            + " checksum=" + checksum[0]);
    }}
}}
"""


def _source(params):
    return _SOURCE.format(**params)


def _setup(env, params):
    # A tiny seed file: its size is the (non-deterministic-native) seed.
    env.fs.put("compress_seed.txt", "x" * 17)


WORKLOAD = Workload(
    name="compress",
    description="LZW compression, CPU-bound (fewest locks and natives)",
    params={
        "test": {"block_size": 300, "blocks": 2},
        "bench": {"block_size": 2500, "blocks": 6},
    },
    source=_source,
    setup=_setup,
)

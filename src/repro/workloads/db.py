"""``db`` — SPEC JVM98 _209_db analogue.

A memory-resident database loaded from a file and queried many times.
Replication profile (matches the paper's Table 2 shape): by far the
most lock acquisitions, nearly all on a *single hot monitor* (the
database), so the largest ``l_asn`` approaches the total acquisition
count; moderate non-deterministic natives (the input file reads);
single-threaded.
"""

from __future__ import annotations

from repro.workloads.base import Workload

_SOURCE = """
class Rec {{
    int id;
    String name;
    int balance;
}}

class Database {{
    Rec[] recs;
    int size;

    Database(int capacity) {{ recs = new Rec[capacity]; size = 0; }}

    synchronized void add(String name, int balance) {{
        Rec r = new Rec();
        r.id = size; r.name = name; r.balance = balance;
        recs[size] = r;
        size = size + 1;
    }}

    synchronized int lookup(int id) {{ return recs[id].balance; }}

    synchronized void update(int id, int delta) {{
        recs[id].balance = recs[id].balance + delta;
    }}

    synchronized String nameOf(int id) {{ return recs[id].name; }}

    synchronized int count() {{ return size; }}

    synchronized int sum() {{
        int total = 0;
        for (int i = 0; i < size; i++) {{ total = total + recs[i].balance; }}
        return total;
    }}
}}

class Main {{
    static void main(String[] args) {{
        Database db = new Database({records} + 8);
        int fd = Files.open("db_input.txt", "r");
        String line = Files.readLine(fd);
        while (!line.equals("")) {{
            int sep = line.indexOf(" ");
            String name = line.substring(0, sep);
            int balance = Strings.substring(line, sep + 1, line.length()).trim().length() * 17
                + line.hashCode() % 97;
            db.add(name, balance);
            line = Files.readLine(fd);
        }}
        Files.close(fd);

        int n = db.count();
        int seed = 123456789;
        int hits = 0;
        for (int q = 0; q < {queries}; q++) {{
            seed = seed * 1103515245 + 12345;
            int idx = ((seed >>> 16) % n + n) % n;
            int kind = q % 4;
            if (kind == 0) {{
                db.update(idx, 1);
            }} else if (kind == 1) {{
                hits = hits + db.lookup(idx);
            }} else if (kind == 2) {{
                String nm = db.nameOf(idx);
                hits = hits + nm.length();
            }} else {{
                db.update(idx, -1);
            }}
        }}
        System.println("db records=" + n + " hits=" + hits
            + " sum=" + db.sum());
    }}
}}
"""


def _source(params):
    return _SOURCE.format(**params)


def _setup(env, params):
    lines = []
    seed = 42
    for i in range(params["records"]):
        seed = (seed * 1103515245 + 12345) & 0xFFFFFFFF
        lines.append(f"name{i:05d} {seed % 100000}")
    env.fs.put("db_input.txt", "\n".join(lines) + "\n")


WORKLOAD = Workload(
    name="db",
    description="memory-resident database, queried many times "
                "(lock-acquisition heavy, one hot monitor)",
    params={
        "test": {"records": 60, "queries": 1200},
        "bench": {"records": 300, "queries": 30000},
    },
    source=_source,
    setup=_setup,
)


# ======================================================================
# db_server — the serving variant: a key-value store behind a request
# port.  ``Server.recv`` blocks (parks at a safe-point event) until the
# router delivers the next request, so the program runs open-ended and
# the fleet drives it with :meth:`ReplicaGroup.serve`.  Requests are
# ``"<rid> <op> <key> [<val>]"``; every request gets exactly one
# ``Server.reply``.
# ======================================================================
_SERVER_SOURCE = """
class Kv {{
    int[] vals;
    boolean[] present;

    Kv(int capacity) {{
        vals = new int[capacity];
        present = new boolean[capacity];
    }}

    synchronized String put(int k, int v) {{
        vals[k] = v; present[k] = true;
        return "stored";
    }}

    synchronized String get(int k) {{
        if (present[k]) {{ return "v=" + vals[k]; }}
        return "miss";
    }}

    synchronized String add(int k, int d) {{
        vals[k] = vals[k] + d; present[k] = true;
        return "v=" + vals[k];
    }}
}}

class Main {{
    static int parseInt(String s) {{
        int v = 0;
        for (int i = 0; i < s.length(); i++) {{
            v = v * 10 + (Strings.charAt(s, i) - 48);
        }}
        return v;
    }}

    static void main(String[] args) {{
        Kv store = new Kv({keyspace});
        boolean run = true;
        int served = 0;
        while (run) {{
            String req = Server.recv("{port}");
            if (req.startsWith("stop")) {{
                run = false;
            }} else {{
                int s1 = req.indexOf(" ");
                String body = req.substring(s1 + 1, req.length());
                int s2 = body.indexOf(" ");
                String op = body.substring(0, s2);
                String rest = body.substring(s2 + 1, body.length());
                int s3 = rest.indexOf(" ");
                int key;
                int val;
                if (s3 < 0) {{
                    key = parseInt(rest);
                    val = 0;
                }} else {{
                    key = parseInt(rest.substring(0, s3));
                    val = parseInt(rest.substring(s3 + 1, rest.length()));
                }}
                String resp;
                if (op.equals("put")) {{
                    resp = store.put(key, val);
                }} else if (op.equals("add")) {{
                    resp = store.add(key, val);
                }} else {{
                    resp = store.get(key);
                }}
                Server.reply(req, resp);
                served = served + 1;
            }}
        }}
        System.println("kv served " + served);
    }}
}}
"""


def _server_source(params):
    return _SERVER_SOURCE.format(**params)


SERVER_WORKLOAD = Workload(
    name="db_server",
    description="long-running key-value server fed through a request "
                "port (the fleet's per-shard workload)",
    params={
        "test": {"keyspace": 64, "port": "req"},
        "bench": {"keyspace": 512, "port": "req"},
    },
    source=_server_source,
)

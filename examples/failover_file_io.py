"""A crash-consistent ledger: file I/O with volatile-state recovery.

The ledger program appends transaction lines to a file through the
(volatile) file-descriptor table.  The paper's side-effect handlers
(§4.4) rebuild the fd table and offsets at the backup, and the
output-commit protocol guarantees each line lands exactly once — no
matter where the primary dies.

This example sweeps the crash point across *every* event of the
execution and checks the final ledger after each failover.

Run:  python examples/failover_file_io.py
"""

from repro import Environment, ReplicatedJVM, compile_program

SOURCE = """
class Ledger {
    int fd;
    int balance;
    Ledger(String path) { fd = Files.open(path, "w"); }
    void record(String who, int amount) {
        balance = balance + amount;
        Files.writeLine(fd, who + " " + amount + " -> " + balance);
    }
    void close() {
        Files.writeLine(fd, "final " + balance);
        Files.close(fd);
    }
}

class Main {
    static void main(String[] args) {
        Ledger ledger = new Ledger("ledger.txt");
        ledger.record("alice", 120);
        ledger.record("bob", -40);
        ledger.record("carol", 55);
        ledger.record("dave", -15);
        ledger.close();
        System.println("ledger committed, size=" + Files.size("ledger.txt"));
    }
}
"""


def main() -> None:
    template = ReplicatedJVM(compile_program(SOURCE), env=Environment())
    template.run("Main")
    reference = template.env.fs.contents("ledger.txt")
    total_events = template.shipper.injector.events
    print("== reference ledger (no failure) ==")
    print(reference)
    print(f"execution spans {total_events} crash-injectable events\n")

    failures = 0
    reexecuted = tested = 0
    for crash_at in range(1, total_events + 1):
        # A machine runs once; clone() stamps out the next configuration.
        machine = template.clone(crash_at=crash_at)
        result = machine.run("Main")
        assert result.failed_over
        ledger = machine.env.fs.contents("ledger.txt")
        status = "OK " if ledger == reference else "BAD"
        if ledger != reference:
            failures += 1
            print(f"crash@{crash_at:3d}: {status}")
        tested += machine.backup_metrics.outputs_tested
        reexecuted += machine.backup_metrics.outputs_reexecuted

    print(f"swept {total_events} crash points: "
          f"{total_events - failures} exactly-once, {failures} divergent")
    print(f"uncertain outputs resolved by testing: {tested}, "
          f"by idempotent re-execution: {reexecuted}")
    assert failures == 0
    print("\nthe ledger is crash-consistent at every failure point ✓")


if __name__ == "__main__":
    main()

"""Failover over a bad network: fault injection meets output commit.

The paper ships the log over a link it trusts (its FT-JVM pairs sat on
one switch).  This repository makes the link pluggable: here the same
workload runs over increasingly hostile :class:`FaultyTransport`
profiles — injected latency, drops, duplicates, reordering — and over
a real localhost TCP socket.  Two things to watch:

* **Safety is free.**  Output commit already waits for an ack, and the
  transport only acks a contiguous prefix, so every profile recovers
  to the exact same stable state.  The crash sweep below checks this
  at every other event.
* **Performance is not.**  Retransmits and round-trip waits show up in
  the metrics; the table prints what each profile costs.

Run:  python examples/faulty_network_failover.py
"""

from repro import (
    Environment,
    FAULT_PROFILES,
    FaultyTransport,
    ReplicatedJVM,
    compile_program,
)

SOURCE = """
class Main {
    static void main(String[] args) {
        int fd = Files.open("journal.txt", "w");
        int h = 7;
        for (int i = 0; i < 6; i++) {
            h = h * 31 + i;
            Files.writeLine(fd, "entry " + i + " h=" + h);
            System.println("committed " + i);
        }
        Files.close(fd);
        System.println("done h=" + h);
    }
}
"""


def main() -> None:
    template = ReplicatedJVM(compile_program(SOURCE), env=Environment())
    template.run("Main")
    reference = template.env.snapshot_stable()
    events = template.shipper.injector.events
    print(f"reference run: {events} crash-injectable events, "
          f"journal.txt = {len(template.env.fs.contents('journal.txt'))} "
          f"bytes\n")

    header = (f"{'profile':10s} {'sweeps':>6s} {'divergent':>9s} "
              f"{'retransmits':>11s} {'dropped':>7s} {'ack wait':>9s} "
              f"{'stalls':>6s}")
    print(header)
    print("-" * len(header))
    for name in sorted(FAULT_PROFILES):
        profile = FAULT_PROFILES[name]
        divergent = sweeps = 0
        retransmits = dropped = stalls = 0
        ack_wait = 0.0
        for crash_at in range(1, events + 1, 2):
            machine = template.clone(
                crash_at=crash_at,
                transport=FaultyTransport(profile, seed=811 * crash_at),
            )
            result = machine.run("Main")
            assert result.failed_over
            sweeps += 1
            if machine.env.snapshot_stable() != reference:
                divergent += 1
            metrics = machine.primary_metrics
            retransmits += metrics.retransmits
            dropped += metrics.messages_dropped
            stalls += metrics.backpressure_stalls
            ack_wait += metrics.ack_wait_time
        print(f"{name:10s} {sweeps:>6d} {divergent:>9d} "
              f"{retransmits:>11d} {dropped:>7d} {ack_wait:>9.0f} "
              f"{stalls:>6d}")

    print("\nevery profile recovered the exact reference state — the "
          "network can only slow the primary down, never break "
          "exactly-once.")

    # The same run over a real TCP connection on localhost.
    try:
        socket_clone = template.clone(crash_at=events // 2,
                                      transport="socket")
    except Exception as exc:          # no sockets in this sandbox
        print(f"\n(socket demo skipped: {exc})")
        return
    try:
        result = socket_clone.run("Main")
        assert result.failed_over
        assert socket_clone.env.snapshot_stable() == reference
        rtt = socket_clone.primary_metrics.ack_wait_time
        print(f"\nsocket transport: failover mid-run over real TCP, "
              f"identical state, {rtt * 1e6:.0f} µs spent in "
              f"output-commit round trips.")
    finally:
        socket_clone.close()


if __name__ == "__main__":
    main()

"""The paper's Figure 1: why data races defeat lock replication.

A static field is checked without holding a monitor, so different
thread schedules invoke the initialization a different number of times.
Replicated lock acquisition assumes R4A (race-free programs) — when the
assumption fails, the lock acquisition *sequence itself* differs from
schedule to schedule and cannot pin the execution.  Replicated thread
scheduling assumes only R4B (green threads) and reproduces even racy
executions exactly.

Run:  python examples/data_race_demo.py
"""

from repro import (Environment, ReplicatedJVM, ReplicationConfig,
                   compile_program)
from repro.replication import ReplicaSettings, run_unreplicated

# Figure 1's shape: an unguarded null check around shared static state.
SOURCE = """
class Formatter {
    static int constructed;
    Formatter() { constructed = constructed + 1; }
}

class Example extends Thread {
    static Formatter shared_data = null;   // shared static (Fig. 1 line 2)
    static Object lock = new Object();
    static int inits;
    void run() {
        int warm = 0;
        for (int k = 0; k < 40; k++) { warm = warm + k; }
        if (shared_data == null) {          // guard NOT protected!
            int pad = 0;
            for (int k = 0; k < 30; k++) { pad = pad + k; }
            shared_data = new Formatter();
            synchronized (lock) {
                inits = inits + 1 + warm - warm + pad - pad;
            }
        }
    }
}

class Main {
    static void main(String[] args) {
        Example a = new Example();
        Example b = new Example();
        a.start(); b.start(); a.join(); b.join();
        System.println("synchronized_method calls: " + Example.inits
            + ", Formatters constructed: " + Formatter.constructed);
    }
}
"""


def main() -> None:
    print("== step 1: the race is real ==")
    profiles = {}
    for seed in range(12):
        env = Environment()
        _, jvm = run_unreplicated(
            compile_program(SOURCE), "Main", env=env,
            settings=ReplicaSettings(seed, 0, seed),
        )
        key = (jvm.sync.total_acquisitions, env.console.transcript().strip())
        profiles.setdefault(key, []).append(seed)
    for (acquisitions, output), seeds in sorted(profiles.items()):
        print(f"  seeds {seeds}: {output}  "
              f"[{acquisitions} lock acquisitions]")
    assert len(profiles) > 1, "expected schedule-dependent behaviour"
    print("  -> different schedules produce different lock-acquisition")
    print("     sequences: R4A is violated, exactly as Figure 1 warns.")
    print("     (The paper had to remove such races from the JRE by hand!)")

    print("\n== step 2: replicated thread scheduling handles it anyway ==")
    env = Environment()
    machine = ReplicatedJVM(compile_program(SOURCE), env=env,
                            config=ReplicationConfig(
                                strategy="thread_sched"))
    machine.run("Main")
    primary_digest = machine.primary_jvm.state_digest()
    primary_output = env.console.transcript().strip()
    machine.replay_backup("Main")
    assert machine.backup_jvm.state_digest() == primary_digest
    print(f"  primary: {primary_output}")
    print("  backup replayed the primary's exact schedule and reached a")
    print("  bit-identical state — R4B needs no race freedom.")


if __name__ == "__main__":
    main()

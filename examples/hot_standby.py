"""Hot standby: near-instant takeover.

The paper uses a *cold* backup — it logs records and replays the whole
log at failure.  The paper also notes that "keeping the backup updated
would require only minor modifications"; this repository implements
that as ``hot_backup=True``: the backup JVM applies every flushed log
message immediately, pausing ("starving") exactly when it would need a
record that has not arrived.

This example crashes the primary late in a run and compares how much
work each kind of backup performs *after* the crash.

Run:  python examples/hot_standby.py
"""

from repro import (Environment, ReplicatedJVM, ReplicationConfig,
                   compile_program)

SOURCE = """
class Stats {
    int sum; int count;
    synchronized void record(int v) { sum = sum + v; count = count + 1; }
    synchronized int mean() { return sum / count; }
}
class Sensor extends Thread {
    Stats stats; int readings;
    Sensor(Stats s, int n) { stats = s; readings = n; }
    void run() {
        int seed = 77;
        for (int i = 0; i < readings; i++) {
            seed = seed * 1103515245 + 12345;
            stats.record(((seed >>> 16) % 100 + 100) % 100);
        }
    }
}
class Main {
    static void main(String[] args) {
        Stats stats = new Stats();
        Sensor a = new Sensor(stats, 400);
        Sensor b = new Sensor(stats, 400);
        a.start(); b.start(); a.join(); b.join();
        System.println("mean=" + stats.mean());
        int fd = Files.open("report.txt", "w");
        Files.writeLine(fd, "samples=800 mean=" + stats.mean());
        Files.close(fd);
    }
}
"""


def run_with(probe, hot: bool, crash_at: int):
    machine = probe.clone(hot_backup=hot, crash_at=crash_at)
    result = machine.run("Main")
    assert result.failed_over and result.final_result.ok
    total = machine.backup_jvm.instructions
    post_crash = total - (machine.hot_precrash_instructions if hot else 0)
    return machine.env, total, post_crash


def main() -> None:
    # Find a late crash point; the probe then serves as clone template.
    probe = ReplicatedJVM(compile_program(SOURCE), env=Environment(),
                          config=ReplicationConfig(strategy="lock_sync"))
    probe.run("Main")
    crash_at = probe.shipper.injector.events - 1
    print(f"crashing the primary at event {crash_at} "
          f"(just before its final output)\n")

    env_cold, cold_total, cold_post = run_with(probe, hot=False,
                                               crash_at=crash_at)
    env_hot, hot_total, hot_post = run_with(probe, hot=True,
                                            crash_at=crash_at)

    assert env_cold.snapshot_stable() == env_hot.snapshot_stable()
    print("final state identical for both backup kinds:")
    print("  " + env_hot.console.transcript().strip())
    print("  report.txt: " + env_hot.fs.contents("report.txt").strip())
    print()
    print(f"{'backup':8s} {'total instr':>12s} {'after crash':>12s}")
    print(f"{'cold':8s} {cold_total:>12d} {cold_post:>12d}")
    print(f"{'hot':8s} {hot_total:>12d} {hot_post:>12d}")
    print(f"\nrecovery work reduced {cold_post / max(hot_post, 1):.0f}x — "
          f"the hot standby had already replayed everything delivered.")


if __name__ == "__main__":
    main()

"""Application-supplied native methods with a custom side-effect handler.

The paper's side-effect handler interface (§4.4) exists precisely so
that applications can bring their own native methods — here a "badge
printer" device — and still get exactly-once output across failover.
We declare the native class to the compiler, implement the native
against the simulated environment, attach a handler that can *test*
whether a print completed, and sweep every crash point.

Run:  python examples/custom_native_device.py
"""

from repro import (Environment, ReplicatedJVM, ReplicationConfig,
                   compile_program)
from repro.minijava import NativeClassSpec, NativeMethodSpec
from repro.replication import SideEffectHandler
from repro.runtime.natives import NativeSpec
from repro.runtime.stdlib import build_natives

# --- 1. Declare the device class to the MiniJava compiler. -----------
PRINTER = NativeClassSpec("Printer", methods=(
    NativeMethodSpec("print", ("String",), "void"),
    NativeMethodSpec("jobs", (), "int"),
))

# --- 2. Implement the natives against the environment. ---------------
# The device's stable state is the file "printer.spool" (one line per
# badge); its job counter is derivable from the spool.


def _print_impl(ctx, receiver, args):
    session = ctx.output_target()
    spool = (session.env.fs.contents("printer.spool")
             if session.env.fs.exists("printer.spool") else "")
    session.env.fs.put("printer.spool", spool + args[0] + "\n")
    return None


def _jobs_impl(ctx, receiver, args):
    session = ctx.file_input()
    if not session.env.fs.exists("printer.spool"):
        return 0
    return session.env.fs.contents("printer.spool").count("\n")


# --- 3. The side-effect handler: makes printing *testable* (R5). -----
class PrinterHandler(SideEffectHandler):
    name = "printer"

    def log(self, session, spec, receiver, args, outcome):
        if spec.signature != "Printer.print/1":
            return None
        spool = session.env.fs.contents("printer.spool")
        return {"op": "printed", "lines": spool.count("\n")}

    def receive(self, state, payload):
        state["lines"] = payload["lines"]

    def test(self, env, state, spec, args):
        if not env.fs.exists("printer.spool"):
            return False
        return env.fs.contents("printer.spool").count("\n") \
            >= state.get("lines", 0) + 1


SOURCE = """
class Main {
    static void main(String[] args) {
        Printer.print("badge: alice");
        Printer.print("badge: bob");
        Printer.print("badge: carol");
        System.println("printed " + Printer.jobs() + " badges");
    }
}
"""


def build():
    natives = build_natives()
    natives.register(NativeSpec(
        "Printer.print/1", _print_impl,
        is_output=True, testable=True, se_handler="printer",
    ))
    natives.register(NativeSpec(
        "Printer.jobs/0", _jobs_impl, deterministic=False,
    ))
    registry = compile_program(SOURCE, native_classes=[PRINTER])
    return registry, natives


def main() -> None:
    registry, natives = build()
    env = Environment()
    machine = ReplicatedJVM(registry, natives=natives, env=env,
                            config=ReplicationConfig(
                                se_handlers=[PrinterHandler()]))
    machine.run("Main")
    reference = env.fs.contents("printer.spool")
    print("== reference spool ==")
    print(reference)
    total_events = machine.shipper.injector.events

    bad = 0
    for crash_at in range(1, total_events + 1):
        registry, natives = build()
        env = Environment()
        machine = ReplicatedJVM(registry, natives=natives, env=env,
                                config=ReplicationConfig(
                                    se_handlers=[PrinterHandler()],
                                    crash_at=crash_at))
        result = machine.run("Main")
        assert result.failed_over
        if env.fs.contents("printer.spool") != reference:
            bad += 1
            print(f"crash@{crash_at}: spool diverged!")
    print(f"swept {total_events} crash points, divergent: {bad}")
    assert bad == 0
    print("every badge printed exactly once, at every crash point ✓")


if __name__ == "__main__":
    main()

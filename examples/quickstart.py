"""Quickstart: a fault-tolerant JVM in thirty lines.

Compiles a MiniJava program, runs it under primary-backup replication,
injects a fail-stop crash in the middle, and shows the backup finishing
the job with exactly-once output.

Run:  python examples/quickstart.py
"""

from repro import (Environment, ReplicatedJVM, ReplicationConfig,
                   compile_program)

SOURCE = """
class Greeter {
    String name;
    Greeter(String name) { this.name = name; }
    synchronized String greet(int i) { return "hello " + name + " #" + i; }
}

class Main {
    static void main(String[] args) {
        Greeter g = new Greeter("world");
        for (int i = 0; i < 5; i++) {
            System.println(g.greet(i));
        }
        System.println("done at t=" + (System.currentTimeMillis() > 0));
    }
}
"""


def main() -> None:
    # --- 1. A failure-free replicated run. ----------------------------
    env = Environment()
    machine = ReplicatedJVM(compile_program(SOURCE), env=env,
                            config=ReplicationConfig(strategy="lock_sync"))
    result = machine.run("Main")
    print("== failure-free run ==")
    print(env.console.transcript())
    print(f"outcome: {result.outcome}")
    print(f"records logged: {machine.primary_metrics.records_logged}, "
          f"output commits: {machine.primary_metrics.output_commits}")
    total_events = machine.shipper.injector.events

    # --- 2. Crash the primary halfway; the backup takes over. ---------
    env = Environment()
    machine = ReplicatedJVM(compile_program(SOURCE), env=env,
                            config=ReplicationConfig(
                                strategy="lock_sync",
                                crash_at=total_events // 2))
    result = machine.run("Main")
    print("\n== run with a mid-execution fail-stop ==")
    print(env.console.transcript())
    print(f"outcome: {result.outcome} "
          f"(crash at event {result.crash_event}, detected after "
          f"{result.detection_intervals} heartbeat intervals)")
    print(f"backup replayed {machine.backup_metrics.records_replayed} "
          f"records, suppressed {machine.backup_metrics.outputs_suppressed} "
          f"already-performed outputs")

    lines = env.console.lines()
    assert lines[:5] == [f"hello world #{i}" for i in range(5)], lines
    print("\nexactly-once output verified: no line lost, none duplicated")


if __name__ == "__main__":
    main()

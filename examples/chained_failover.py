"""Survive repeated failures, not just one.

A single failover leaves the survivor running alone; the replica-group
supervisor re-integrates a fresh backup after every promotion via a
digest-verified checkpoint state transfer, so the group stays
1-fault-tolerant no matter how many primaries die.

This demo kills three successive primaries over a flaky network — the
second one *in the middle of a checkpoint transfer* — and then checks
the survivors' work against a plain unreplicated run:

* the stable environment (file contents, console transcript) is
  byte-identical: every output happened exactly once;
* the final JVM state digest matches component-by-component;
* the torn generation's stale-epoch records were fenced (discarded),
  never replayed.

Run:  python examples/chained_failover.py
"""

from repro import (Environment, FAULT_PROFILES, FaultyTransport,
                   ReplicationConfig, compile_program)
from repro.replication import ReplicaGroup, run_unreplicated
from repro.replication.digest import compute_state_digest

SOURCE = """
class Main {
    static void main(String[] args) {
        int fd = Files.open("ledger.txt", "w");
        int balance = 100;
        for (int i = 0; i < 5; i++) {
            balance = balance + i * 7;
            Files.writeLine(fd, "txn " + i + " balance=" + balance);
            System.println("committed txn " + i);
        }
        Files.close(fd);
        System.println("final balance " + balance);
    }
}
"""


def main() -> None:
    registry = compile_program(SOURCE)

    # A failure-free, unreplicated run is the oracle.
    ref_env = Environment()
    _, ref_jvm = run_unreplicated(registry, "Main", env=ref_env)
    reference = ref_env.snapshot_stable()
    ref_digest = compute_state_digest(ref_jvm, ref_env)

    # Now the same program under the supervisor, with three seeded
    # fail-stops: generation 0 dies a few events after its transfer,
    # generation 1 dies while shipping checkpoint chunks (torn
    # transfer), generation 2 dies again, generation 3 finishes.
    env = Environment()
    group = ReplicaGroup(
        registry,
        env=env,
        config=ReplicationConfig(
            strategy="lock_sync",
            crash_schedule={0: 9, 1: 4, 2: 11},
            transport=lambda generation: FaultyTransport(
                FAULT_PROFILES["flaky"], seed=17 + 97 * generation),
            batch_records=1,
            chunk_bytes=256,
        ),
    )
    result = group.run("Main")

    print(f"survived {result.failures_survived} failures, "
          f"finished in generation {result.final_generation}\n")
    for report in group.reports:
        line = (f"  gen {report.generation}: {report.outcome:22s} "
                f"ckpt={report.checkpoint_bytes}B/"
                f"{report.checkpoint_chunks} chunks")
        if report.crash_event is not None:
            line += f"  crashed at event {report.crash_event}"
        if report.detection_intervals:
            line += f"  detected after {report.detection_intervals} intervals"
        print(line)
    print(f"\nstale records fenced: {result.records_fenced}")
    print(f"checkpoint bytes shipped: {result.checkpoint_bytes_shipped}")

    assert result.failures_survived == 3
    assert group.reports[1].outcome == "crashed_in_transfer"
    assert result.records_fenced > 0

    assert env.snapshot_stable() == reference, "output diverged!"
    digest = compute_state_digest(group.final_jvm, env)
    assert digest.diff(ref_digest) == [], digest.diff(ref_digest)
    print("\nledger.txt and console byte-identical to the unreplicated "
          "run; final state digest matches. Exactly-once, three crashes "
          "deep.")


if __name__ == "__main__":
    main()

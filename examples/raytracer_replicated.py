"""mtrt under both replica-coordination strategies.

The multi-threaded ray tracer is the paper's most interesting case:
it is the only benchmark whose threads genuinely interleave, so both
techniques must earn their keep — and it is the case where replicated
lock acquisition *beats* replicated thread scheduling (paper §5).

This example runs the workload under both strategies, replays the full
log at a backup with a different scheduler seed, and proves bit-exact
state agreement; then it compares the simulated-time overheads.

Run:  python examples/raytracer_replicated.py
"""

from repro import (DEFAULT_COST_MODEL, Environment, ReplicatedJVM,
                   ReplicationConfig)
from repro.workloads import MTRT


def run_strategy(strategy: str):
    env = Environment()
    MTRT.prepare_env(env, "test")
    machine = ReplicatedJVM(MTRT.compile("test"), env=env,
                            config=ReplicationConfig(strategy=strategy))
    result = machine.run(MTRT.main_class)
    assert result.final_result.ok
    output = env.console.transcript().strip()
    primary_digest = machine.primary_jvm.state_digest()

    machine.replay_backup(MTRT.main_class)
    backup_digest = machine.backup_jvm.state_digest()
    return machine, output, primary_digest == backup_digest


def main() -> None:
    print("rendering the scene under both replication strategies...\n")
    outputs = {}
    for strategy in ("lock_sync", "thread_sched"):
        machine, output, digests_match = run_strategy(strategy)
        outputs[strategy] = output
        m = machine.primary_metrics
        time = DEFAULT_COST_MODEL.primary_time(m, strategy)
        base = DEFAULT_COST_MODEL.base_time(m)
        print(f"== {strategy} ==")
        print(f"  image checksum line : {output}")
        print(f"  reschedules         : {m.reschedules}")
        print(f"  lock records        : {m.lock_records}")
        print(f"  schedule records    : {m.schedule_records}")
        print(f"  messages / bytes    : {m.messages_sent} / {m.bytes_sent}")
        print(f"  simulated slowdown  : {time / base:.2f}x")
        print(f"  backup state digest : "
              f"{'identical to primary ✓' if digests_match else 'DIVERGED ✗'}")
        assert digests_match
        print()

    assert outputs["lock_sync"] == outputs["thread_sched"]
    print("both strategies produced the identical image — replication is")
    print("transparent to the application, as the state machine approach")
    print("requires.")


if __name__ == "__main__":
    main()

"""Voting-overhead benchmark: quorum replication (n = 2f+1) vs the
paper's 1:1 primary/backup pair.

The paper's protocol tolerates crash faults with one hot backup; the
quorum-voting extension tolerates f lying members with 2f+1 replicas,
at the price of ballot traffic (one vote per member per digest epoch
and per output) and a certificate check at every output commit.  This
benchmark prices that difference with the shared cost model:

* **pair** — 1:1 ReplicatedJVM, thread_sched, periodic digests: the
  baseline primary-side simulated time;
* **voting** — a 3-member VotingGroup at the same strategy, digest
  interval, and batch size: the era-0 proposer's simulated time plus
  the group's ``voting_component`` (ballots, tally, output gating).

Both runs must stay byte-identical to an unreplicated serial
reference — an overhead number for a run that lost outputs would be
meaningless.

Usable two ways:

* as a script (CI's byzantine-smoke job)::

      PYTHONPATH=src python benchmarks/bench_voting.py \
          --profile test --json BENCH_voting.json

  exits non-zero when any run loses output equivalence or the vote
  traffic is not priced;

* under pytest (``pytest benchmarks/bench_voting.py``), honoring
  ``REPRO_BENCH_PROFILE=test`` and writing both the rendered table and
  ``BENCH_voting.json`` to ``benchmarks/results/``.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

_SWEEP = {
    "test": {"workloads": ("counter",), "n_members": 3},
    "bench": {"workloads": ("counter", "fileio", "hello"), "n_members": 3},
}

_DIGEST_INTERVAL = 2
_BATCH_RECORDS = 1

#: The voting proposer must not cost more than this multiple of the
#: 1:1 pair's primary: ballots are small records, not checkpoints.
_OVERHEAD_CEILING = 3.0


def _reference(workload):
    from repro.env.environment import Environment
    from repro.replication.machine import run_unreplicated
    from repro.replication.supervisor import default_generation_settings

    env = Environment()
    result, _jvm = run_unreplicated(
        workload.registry(), workload.main_class, env=env,
        settings=default_generation_settings(0),
    )
    assert result.ok
    return env.snapshot_stable()


def _run_pair(workload, cost):
    from repro.env.environment import Environment
    from repro.replication.config import ReplicationConfig
    from repro.replication.machine import ReplicatedJVM

    env = Environment()
    machine = ReplicatedJVM(
        workload.registry(), env=env,
        config=ReplicationConfig(
            strategy="thread_sched",
            digest_interval=_DIGEST_INTERVAL,
            batch_records=_BATCH_RECORDS,
        ),
    )
    result = machine.run(workload.main_class)
    assert result.outcome == "primary_completed", result.outcome
    pm = machine.primary_metrics
    return {
        "stable": env.snapshot_stable(),
        "units": cost.primary_time(pm, "thread_sched"),
        "messages": pm.messages_sent,
        "bytes": pm.bytes_sent,
    }


def _run_voting(workload, n_members, cost):
    from repro.env.environment import Environment
    from repro.replication.config import ReplicationConfig
    from repro.replication.voting import VotingGroup

    env = Environment()
    group = VotingGroup(
        workload.registry(), env=env,
        config=ReplicationConfig(
            voting=True, n_members=n_members, strategy="thread_sched",
            digest_interval=_DIGEST_INTERVAL,
            batch_records=_BATCH_RECORDS,
        ),
    )
    result = group.run(workload.main_class)
    assert result.outcome == "completed", result.outcome
    pm = result.reports[0].proposer_metrics
    gm = result.metrics
    # The proposer's own counters carry no ballot traffic (the tally is
    # group-owned), so the two components never double-count.
    voting_units = cost.voting_component(gm)
    return {
        "stable": env.snapshot_stable(),
        "units": cost.primary_time(pm, "thread_sched") + voting_units,
        "voting_units": voting_units,
        "votes_cast": gm.votes_cast,
        "vote_bytes": gm.vote_bytes,
        "quorum_certs": gm.quorum_certs,
        "outputs_gated": gm.outputs_gated,
    }


def _run_cell(name, n_members, cost):
    from repro.conform.workloads import get_workload

    workload = get_workload(name)
    reference = _reference(workload)
    pair = _run_pair(workload, cost)
    voting = _run_voting(workload, n_members, cost)
    return {
        "workload": name,
        "n_members": n_members,
        "pair_units": round(pair["units"], 1),
        "voting_units_total": round(voting["units"], 1),
        "voting_component": round(voting["voting_units"], 1),
        "votes_cast": voting["votes_cast"],
        "vote_bytes": voting["vote_bytes"],
        "quorum_certs": voting["quorum_certs"],
        "outputs_gated": voting["outputs_gated"],
        "overhead_ratio": round(voting["units"] / pair["units"], 4),
        "pair_output_ok": pair["stable"] == reference,
        "voting_output_ok": voting["stable"] == reference,
    }


def run_suite(profile="bench"):
    from repro.harness.costs import DEFAULT_COST_MODEL

    shape = _SWEEP[profile]
    cells = []
    start = time.perf_counter()
    for name in shape["workloads"]:
        cells.append(_run_cell(name, shape["n_members"],
                               DEFAULT_COST_MODEL))
    return {
        "profile": profile,
        "n_members": shape["n_members"],
        "digest_interval": _DIGEST_INTERVAL,
        "batch_records": _BATCH_RECORDS,
        "overhead_ceiling": _OVERHEAD_CEILING,
        "cells": cells,
        "wall_seconds": round(time.perf_counter() - start, 3),
    }


def render(report):
    from repro.harness.tables import render_table
    rows = []
    for cell in report["cells"]:
        rows.append([
            cell["workload"],
            f"{cell['pair_units']:,.0f}",
            f"{cell['voting_units_total']:,.0f}",
            f"{cell['voting_component']:,.0f}",
            cell["votes_cast"],
            cell["quorum_certs"],
            cell["outputs_gated"],
            f"{cell['overhead_ratio']:.2f}x",
            "yes" if cell["pair_output_ok"] and cell["voting_output_ok"]
            else "NO",
        ])
    return render_table(
        f"Quorum voting (n={report['n_members']}) vs 1:1 pair "
        f"(thread_sched, digest_interval={report['digest_interval']}, "
        f"profile={report['profile']})",
        ["Workload", "Pair units", "Voting units", "Ballot units",
         "Votes", "Certs", "Gated", "Overhead", "Output ok"],
        rows,
    )


def _violations(report):
    bad = []
    for cell in report["cells"]:
        name = cell["workload"]
        if not cell["pair_output_ok"]:
            bad.append(f"{name}: pair output diverged from reference")
        if not cell["voting_output_ok"]:
            bad.append(f"{name}: voting output diverged from reference")
        if cell["votes_cast"] == 0 or cell["voting_component"] == 0:
            bad.append(f"{name}: ballot traffic was not priced")
        if cell["quorum_certs"] == 0:
            bad.append(f"{name}: no quorum certificates formed")
        if cell["overhead_ratio"] > report["overhead_ceiling"]:
            bad.append(
                f"{name}: voting overhead {cell['overhead_ratio']:.2f}x "
                f"exceeds the {report['overhead_ceiling']:.1f}x ceiling"
            )
    return bad


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_voting_bench(bench_profile, save_result):
    report = run_suite(bench_profile)
    save_result("voting_overhead", render(report))
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    with open(os.path.join(results_dir, "BENCH_voting.json"), "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    assert not _violations(report)


# ----------------------------------------------------------------------
# script entry point (CI byzantine smoke)
# ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default=os.environ.get(
        "REPRO_BENCH_PROFILE", "bench"), choices=sorted(_SWEEP))
    parser.add_argument("--json", default="BENCH_voting.json",
                        metavar="PATH", help="write the report here")
    args = parser.parse_args(argv)

    report = run_suite(args.profile)
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(render(report))
    worst = max(report["cells"], key=lambda c: c["overhead_ratio"])
    print(f"voting overhead: worst cell {worst['workload']} at "
          f"{worst['overhead_ratio']:.2f}x the 1:1 pair "
          f"(n={report['n_members']})")
    bad = _violations(report)
    if bad:
        for line in bad:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

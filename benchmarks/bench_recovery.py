"""Recovery-time benchmark: replay cost and log memory vs checkpoint
interval.

The paper's promote-the-backup recovery replays the retained log; with
an unbounded log that replay grows with run length.  Steady-state
incremental checkpointing truncates the log at every adopted delta, so
the sweep below trades three quantities against the emission interval:

* **recovery work** — restore cost plus tail replay, in simulated
  bytecode-equivalent units (the cost model's ``checkpoint_restore``
  and ``replay_record`` weights);
* **log memory** — the retained log's high-water mark in records (what
  the primary must keep buffered for a future promotion);
* **steady-state throughput** — primary-side simulated time of a
  crash-free run, where every delta pays capture, wire, compose, and
  commit-ack costs.

The ``None`` row is the infinite-interval baseline: the log is never
truncated and a late crash replays the whole history.

Usable two ways:

* as a script (CI's recovery-smoke job)::

      PYTHONPATH=src python benchmarks/bench_recovery.py \
          --profile test --json BENCH_recovery.json

  exits non-zero when any cell loses output equivalence or the sweep
  fails its bounded-recovery / bounded-overhead checks;

* under pytest (``pytest benchmarks/bench_recovery.py``), honoring
  ``REPRO_BENCH_PROFILE=test`` and writing both the rendered table and
  ``BENCH_recovery.json`` to ``benchmarks/results/``.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: Interval sweep per profile (``None`` = never checkpoint, the
#: unbounded baseline).  The test profile's run is short (~130
#: qualifying slices), so its finite intervals are small; the bench
#: profile has ~3000 slices and can amortize a large interval.
_SWEEP = {
    "test": {"workload": "db", "strategy": "lock_sync",
             "intervals": (None, 32, 8, 2)},
    "bench": {"workload": "db", "strategy": "lock_sync",
              "intervals": (None, 1024, 256, 64, 16, 4)},
}

#: Steady-state overhead budget for the headline operating point: at
#: least one finite interval must stay within this fraction of the
#: no-checkpoint baseline's throughput (bench profile).
_OVERHEAD_BUDGET = 0.10


def _fresh_machine(workload, profile, strategy, interval):
    from repro.env.environment import Environment
    from repro.replication.config import ReplicationConfig
    from repro.replication.machine import ReplicatedJVM

    env = Environment()
    workload.prepare_env(env, profile)
    return ReplicatedJVM(
        workload.compile(profile), env=env,
        config=ReplicationConfig(strategy=strategy,
                                 checkpoint_interval=interval))


def _run_cell(workload, profile, strategy, interval, cost):
    """One interval: a crash-free throughput run, then a late-crash
    recovery run at the same configuration."""
    steady = _fresh_machine(workload, profile, strategy, interval)
    result = steady.run(workload.main_class)
    assert result.outcome == "primary_completed", result.outcome
    reference = steady.env.console.lines()
    pm = steady.primary_metrics
    events = steady.shipper.injector.events

    from repro.env.environment import Environment
    crash_env = Environment()
    workload.prepare_env(crash_env, profile)
    crash_at = max(1, events - 2)
    crashed = steady.clone(env=crash_env, crash_at=crash_at)
    crash_result = crashed.run(workload.main_class)
    assert crash_result.failed_over, interval
    bm = crashed.backup_metrics

    recovery_units = (
        bm.checkpoints_restored * cost.checkpoint_restore
        + bm.recovery_tail_records * cost.replay_record
    )
    return {
        "interval": interval,
        "events": events,
        "crash_at": crash_at,
        "emissions": pm.deltas_shipped + (1 if pm.checkpoint_records
                                          and interval else 0),
        "deltas_shipped": pm.deltas_shipped,
        "delta_bytes": pm.delta_bytes,
        "records_truncated": pm.records_truncated,
        "log_records_max": pm.retained_records_max,
        "recovery_tail_records": bm.recovery_tail_records,
        "records_replayed": bm.records_replayed,
        "checkpoints_restored": bm.checkpoints_restored,
        "recovery_units": recovery_units,
        "throughput_units": cost.primary_time(pm, strategy),
        "output_ok": crash_env.console.lines() == reference,
    }


def run_suite(profile="bench"):
    from repro.harness.costs import DEFAULT_COST_MODEL
    from repro.workloads import BY_NAME

    shape = _SWEEP[profile]
    workload = BY_NAME[shape["workload"]]
    cells = []
    start = time.perf_counter()
    for interval in shape["intervals"]:
        cells.append(_run_cell(workload, profile, shape["strategy"],
                               interval, DEFAULT_COST_MODEL))
    baseline = next(c for c in cells if c["interval"] is None)
    for cell in cells:
        cell["overhead_vs_baseline"] = round(
            cell["throughput_units"] / baseline["throughput_units"] - 1, 4)
        cell["recovery_speedup"] = round(
            (baseline["recovery_tail_records"] or 1)
            / max(1, cell["recovery_tail_records"]), 1)
    return {
        "profile": profile,
        "workload": shape["workload"],
        "strategy": shape["strategy"],
        "overhead_budget": _OVERHEAD_BUDGET,
        "cells": cells,
        "wall_seconds": round(time.perf_counter() - start, 3),
    }


def render(report):
    from repro.harness.tables import render_table
    rows = []
    for cell in report["cells"]:
        rows.append([
            "inf" if cell["interval"] is None else cell["interval"],
            cell["emissions"],
            cell["log_records_max"],
            cell["recovery_tail_records"],
            f"{cell['recovery_units']:,.0f}",
            f"{cell['recovery_speedup']:.1f}x",
            f"{cell['overhead_vs_baseline']:+.1%}",
            "yes" if cell["output_ok"] else "NO",
        ])
    return render_table(
        f"Recovery time vs checkpoint interval "
        f"({report['workload']}, {report['strategy']}, "
        f"profile={report['profile']})",
        ["Interval", "Ckpts", "Log max", "Replay tail",
         "Recovery units", "Speedup", "Overhead", "Output ok"],
        rows,
    )


def _violations(report):
    """Sweep-level checks: equivalence everywhere, bounded recovery,
    and (bench profile) a sub-budget operating point."""
    bad = []
    cells = report["cells"]
    baseline = next(c for c in cells if c["interval"] is None)
    finite = [c for c in cells if c["interval"] is not None]
    for cell in cells:
        if not cell["output_ok"]:
            bad.append(f"interval={cell['interval']}: output diverged")
    if baseline["records_truncated"] > 1:
        bad.append("baseline truncated its log without checkpointing")
    for cell in finite:
        if not cell["records_truncated"]:
            bad.append(f"interval={cell['interval']}: log never truncated")
        if cell["recovery_tail_records"] \
                >= baseline["recovery_tail_records"]:
            bad.append(f"interval={cell['interval']}: replay tail "
                       f"{cell['recovery_tail_records']} not below the "
                       f"unbounded baseline "
                       f"{baseline['recovery_tail_records']}")
    # Shorter intervals must never retain more log than longer ones.
    by_interval = sorted(finite, key=lambda c: c["interval"])
    marks = [c["log_records_max"] for c in by_interval]
    if marks != sorted(marks):
        bad.append(f"log high-water marks not monotone in interval: "
                   f"{marks}")
    if report["profile"] == "bench":
        budget = report["overhead_budget"]
        if not any(c["overhead_vs_baseline"] <= budget for c in finite):
            bad.append(f"no finite interval within the {budget:.0%} "
                       f"steady-state overhead budget")
    return bad


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_recovery_bench(bench_profile, save_result):
    report = run_suite(bench_profile)
    save_result("recovery_intervals", render(report))
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    with open(os.path.join(results_dir, "BENCH_recovery.json"), "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    assert not _violations(report)


# ----------------------------------------------------------------------
# script entry point (CI recovery smoke)
# ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default=os.environ.get(
        "REPRO_BENCH_PROFILE", "bench"), choices=sorted(_SWEEP))
    parser.add_argument("--json", default="BENCH_recovery.json",
                        metavar="PATH", help="write the report here")
    args = parser.parse_args(argv)

    report = run_suite(args.profile)
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(render(report))
    best = min((c for c in report["cells"] if c["interval"] is not None),
               key=lambda c: c["recovery_tail_records"])
    print(f"bounded recovery: tail {best['recovery_tail_records']} "
          f"record(s) at interval {best['interval']} "
          f"({best['recovery_speedup']}x vs unbounded baseline)")
    bad = _violations(report)
    if bad:
        for line in bad:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Table 2: properties of the benchmarks pertinent to the implementation.

Regenerates the paper's Table 2 rows (event counts per benchmark, for
both replication strategies) and asserts the qualitative facts the
paper's text highlights.
"""

from repro.harness.runner import get_all_runs
from repro.harness.tables import render_table2, table2_data


def test_table2(benchmark, bench_profile, save_result):
    runs = benchmark.pedantic(
        lambda: get_all_runs(bench_profile), rounds=1, iterations=1,
    )
    save_result("table2", render_table2(runs))
    if bench_profile != "bench":
        # Shape claims are calibrated for the full bench profile; a
        # smoke run (REPRO_BENCH_PROFILE=test) only checks execution.
        return

    data = table2_data(runs)

    # "Database queries in Db result in the most lock acquisitions by far"
    locks = {w: data[w]["locks_acquired"] for w in data}
    assert locks["db"] == max(locks.values())
    assert locks["db"] > 2 * sorted(locks.values())[-3]

    # "...while Jack locks more unique objects."
    objects = {w: data[w]["objects_locked"] for w in data}
    assert objects["jack"] == max(objects.values())

    # "All applications have few intercepted native methods and even
    # fewer output commits."
    for w in data:
        assert data[w]["nm_output_commits"] <= data[w]["nm_intercepted"] + 5
        assert data[w]["nm_intercepted"] < data[w]["locks_acquired"] + 1000

    # "The largest l_asn shows that the lock acquisitions are skewed —
    # few locks are responsible for most acquisitions." (db, jess)
    for w in ("db", "jess"):
        assert data[w]["largest_l_asn"] > 0.9 * data[w]["locks_acquired"]

    # "only Mtrt actually requires them for multi-threading": every
    # other benchmark has (essentially) no reschedules.
    for w in data:
        if w == "mtrt":
            assert data[w]["reschedules"] > 50
        else:
            assert data[w]["reschedules"] <= 2

    # Under TS, single-threaded apps transmit no schedule records at
    # all; the lock-sync implementation "does not take advantage of the
    # single-threaded case, sending many unnecessary messages".
    for w in data:
        if w != "mtrt":
            assert data[w]["ts_schedule_records"] == 0
        assert data[w]["lock_logged_messages"] >= data[w]["ts_logged_messages"] - 2

"""Figure 2: execution time of both implementations, primary and
backup, normalized to the unreplicated JVM.

Shape claims asserted (paper §5):
* replicated lock acquisition averages well above replicated thread
  scheduling (paper: 140% vs 60% overhead);
* backup replay is cheaper than primary execution (no messages to
  send, no output-commit stalls);
* mtrt is the case where lock-sync beats thread scheduling.
"""

from repro.harness.runner import get_all_runs
from repro.harness.tables import WORKLOAD_ORDER, averages, fig2_data, render_fig2


def test_fig2(benchmark, bench_profile, save_result):
    runs = benchmark.pedantic(
        lambda: get_all_runs(bench_profile), rounds=1, iterations=1,
    )
    save_result("fig2", render_fig2(runs))
    if bench_profile != "bench":
        # Shape claims are calibrated for the full bench profile; a
        # smoke run (REPRO_BENCH_PROFILE=test) only checks execution.
        return

    data = fig2_data(runs)

    # Average overheads: lock replication costs much more than thread
    # scheduling (paper: 140% vs 60%).
    lock_avg = averages(data, "lock_primary") - 1
    ts_avg = averages(data, "ts_primary") - 1
    assert lock_avg > ts_avg
    assert lock_avg > 0.6, f"lock avg {lock_avg:.2f}"
    assert 0.2 < ts_avg < 1.2, f"ts avg {ts_avg:.2f}"

    # Backups replay faster than primaries execute.
    for w in WORKLOAD_ORDER:
        assert data[w]["lock_backup"] < data[w]["lock_primary"]
        assert data[w]["ts_backup"] < data[w]["ts_primary"]
        # replay still costs at least the baseline
        assert data[w]["lock_backup"] >= 1.0
        assert data[w]["ts_backup"] >= 1.0

    # The paper's observed inversion: for mtrt, replicating lock
    # acquisitions performs better than replicating thread scheduling.
    assert data["mtrt"]["lock_primary"] < data["mtrt"]["ts_primary"]

    # db is the worst case for lock replication.
    lock_primaries = {w: data[w]["lock_primary"] for w in WORKLOAD_ORDER}
    assert lock_primaries["db"] == max(lock_primaries.values())

    # compress/mpegaudio are the cheapest to replicate under lock-sync
    # (paper: 5% for mpegaudio).
    assert data["mpegaudio"]["lock_primary"] < 1.2
    assert data["compress"]["lock_primary"] < 1.2

"""Fleet serving benchmark: open-loop traffic over sharded replica groups.

Scenarios on the same seeded traffic schedule:

* ``steady`` — every shard stays healthy on the default ``slice``
  engine; the latency distribution is the fleet's baseline (routing +
  ingest wake-up + output-committed reply per request);
* ``steady_block`` — the same healthy fleet with every replica on the
  compiled ``block`` engine: identical responses, lower per-bytecode
  dispatch surcharge, so the whole latency distribution shifts down;
* ``crash_under_load`` — one shard's primary fail-stops mid-load; the
  fleet keeps serving while that shard fails over, reconciles its
  request port, and re-arms a fresh backup via checkpoint transfer.
  The crash must cost *latency only*: all scenarios must commit every
  request exactly once with responses matching the serial reference.

Latency/throughput are simulated time (the cost model's bytecode
equivalents over seeded arrivals — deterministic under the seed);
``wall_seconds`` reports the real substrate cost of the run.

Usable two ways:

* as a script (CI's fleet-smoke job)::

      PYTHONPATH=src python benchmarks/bench_fleet.py \
          --json BENCH_fleet.json

  exits non-zero when either scenario loses, duplicates, or corrupts a
  response;

* under pytest (``pytest benchmarks/bench_fleet.py``), honoring
  ``REPRO_BENCH_PROFILE=test`` and writing both the rendered table and
  ``BENCH_fleet.json`` to ``benchmarks/results/``.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: Traffic shapes per profile: the test profile proves the plumbing,
#: the bench profile produces the numbers in README.md.
_TRAFFIC = {
    "test": {"n_shards": 3, "qps": 300.0, "n_requests": 120,
             "n_clients": 4, "crash_at": 40},
    "bench": {"n_shards": 3, "qps": 400.0, "n_requests": 500,
              "n_clients": 8, "crash_at": 40},
}

#: The shard whose primary fail-stops in the crash scenario.
_CRASH_SHARD = 1


def _run_scenario(profile, crash, voting=False, engine=None):
    from repro.fleet import Fleet, TrafficSpec
    from repro.replication.config import ReplicationConfig
    from repro.runtime.jvm import JVMConfig
    from repro.workloads import DB_SERVER

    shape = _TRAFFIC[profile]
    keyspace = int(DB_SERVER.params_for(profile)["keyspace"])
    spec = TrafficSpec(qps=shape["qps"], n_requests=shape["n_requests"],
                       n_clients=shape["n_clients"], keyspace=keyspace)
    crash_for = None
    if crash:
        schedule = {0: shape["crash_at"]}
        crash_for = (lambda s: schedule if s == _CRASH_SHARD else None)
    config = None
    if voting:
        config = ReplicationConfig(voting=True, n_members=3,
                                   strategy="thread_sched")
    if engine is not None:
        config = (config or ReplicationConfig()).merged(
            jvm_config=JVMConfig(engine=engine))
    start = time.perf_counter()
    fleet = Fleet(shape["n_shards"], profile=profile,
                  config=config, crash_schedule_for=crash_for)
    metrics = fleet.serve_open_loop(spec)
    wall = time.perf_counter() - start
    report = metrics.as_dict()
    report["wall_seconds"] = round(wall, 3)
    return report


def run_suite(profile="bench", voting=False):
    """Both scenarios (plus the voting fleet when asked) as a
    JSON-ready report dict."""
    scenarios = {
        "steady": _run_scenario(profile, crash=False),
        "steady_block": _run_scenario(profile, crash=False,
                                      engine="block"),
        "crash_under_load": _run_scenario(profile, crash=True),
    }
    if voting:
        # Same traffic, every shard a 3-member quorum-voting group:
        # the price of balloting every digest epoch and holding each
        # output for an f+1 certificate, on the same simulated clock.
        scenarios["voting_steady"] = _run_scenario(
            profile, crash=False, voting=True)
    return {
        "profile": profile,
        "traffic": dict(_TRAFFIC[profile]),
        "crash_shard": _CRASH_SHARD,
        "scenarios": scenarios,
    }


def render(report):
    from repro.harness.tables import render_table
    rows = []
    for name, cell in report["scenarios"].items():
        rows.append([
            name, cell["requests_offered"], cell["responses_committed"],
            cell["failovers_absorbed"],
            f"{cell['p50_latency_ms']:.3f}",
            f"{cell['p99_latency_ms']:.3f}",
            f"{cell['throughput_rps']:.1f}",
            "yes" if cell["exactly_once"] else "NO",
        ])
    return render_table(
        f"Fleet serving, simulated latency/throughput "
        f"(profile={report['profile']}, "
        f"{report['traffic']['n_shards']} shards)",
        ["Scenario", "Offered", "Committed", "Failovers",
         "p50 ms", "p99 ms", "rps", "Exactly-once"],
        rows,
    )


def _violations(report):
    return [
        f"{name}: lost={cell['responses_lost']} "
        f"dup={cell['responses_duplicated']} wrong={cell['responses_wrong']}"
        for name, cell in report["scenarios"].items()
        if not cell["exactly_once"]
    ]


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_fleet_bench(bench_profile, save_result):
    report = run_suite(bench_profile, voting=True)
    save_result("fleet_serving", render(report))
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    with open(os.path.join(results_dir, "BENCH_fleet.json"), "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    assert not _violations(report)
    crash = report["scenarios"]["crash_under_load"]
    assert crash["failovers_absorbed"] >= 1
    # The failover shows up as tail latency, never as lost work.
    assert crash["p99_latency_ms"] > report["scenarios"]["steady"][
        "p99_latency_ms"]
    # The compiled engine serves the identical traffic strictly faster.
    steady = report["scenarios"]["steady"]
    block = report["scenarios"]["steady_block"]
    assert block["responses_committed"] == steady["responses_committed"]
    assert block["p50_latency_ms"] < steady["p50_latency_ms"]
    assert block["block_cache_hits"] > 0


# ----------------------------------------------------------------------
# script entry point (CI fleet smoke)
# ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default=os.environ.get(
        "REPRO_BENCH_PROFILE", "bench"), choices=sorted(_TRAFFIC))
    parser.add_argument("--json", default="BENCH_fleet.json",
                        metavar="PATH", help="write the report here")
    parser.add_argument("--voting", action="store_true",
                        help="add a quorum-voting fleet scenario "
                             "(3-member groups per shard) to the report")
    args = parser.parse_args(argv)

    report = run_suite(args.profile, voting=args.voting)
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(render(report))
    crash = report["scenarios"]["crash_under_load"]
    print(f"crash-under-load: {crash['failovers_absorbed']} failover(s), "
          f"{crash['requests_requeued']} request(s) requeued, "
          f"p99 {crash['p99_latency_ms']:.1f}ms vs steady "
          f"{report['scenarios']['steady']['p99_latency_ms']:.1f}ms")
    steady = report["scenarios"]["steady"]
    block = report["scenarios"]["steady_block"]
    print(f"block engine: p50 {block['p50_latency_ms']:.3f}ms vs "
          f"steady {steady['p50_latency_ms']:.3f}ms "
          f"({block['blocks_compiled']} blocks compiled, "
          f"{block['block_cache_hits']} cache hits)")
    if args.voting:
        v = report["scenarios"]["voting_steady"]
        print(f"voting fleet: p50 {v['p50_latency_ms']:.3f}ms "
              f"p99 {v['p99_latency_ms']:.3f}ms "
              f"{v['throughput_rps']:.1f}rps "
              f"({v['votes_cast']} votes, {v['quorum_certs']} certs, "
              f"{v['outputs_gated']} outputs gated)")
    bad = _violations(report)
    if bad:
        for line in bad:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

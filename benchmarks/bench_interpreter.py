"""Execution-engine microbenchmarks: single-step vs the fast paths.

Three kernels stress the things the fast paths optimize:

* ``tight_loop`` — straight-line arithmetic in a hot loop: pre-decoded
  operand streams, run-until-event batching (almost every bytecode is
  a plain op, so batches are long), and — under ``block`` — the
  superinstruction compiler, which turns the loop body into one
  generated Python function per basic block;
* ``call_heavy`` — virtual + static invocations in a loop: the inline
  caches for method resolution (every call is a safe-point event, so
  batches are short and dispatch overhead dominates);
* ``monitor_heavy`` — synchronized method churn: monitor ops are
  always safe-point events, bounding what batching can win (and under
  ``lock_sync`` each acquisition also logs a record).

Each kernel runs under all three engines in three replication modes
(unreplicated baseline, ``lock_sync`` primary, ``thread_sched``
primary).  Every cell asserts all engines produce the *same* final
state digest and instruction count — the microbenchmark doubles as an
equivalence check — and reports wall-clock bytecodes/second plus the
slice/step and block/step speedups.

Usable two ways:

* as a script (CI's perf-smoke job)::

      PYTHONPATH=src python benchmarks/bench_interpreter.py \
          --json BENCH_interpreter.json --min-speedup 2.0 \
          --min-block-speedup 6.0

  exits non-zero when the unreplicated tight-loop speedups fall below
  the floors;

* under pytest (``pytest benchmarks/bench_interpreter.py``), honoring
  ``REPRO_BENCH_PROFILE=test`` for a fast smoke pass and writing both
  the rendered table and ``BENCH_interpreter.json`` to
  ``benchmarks/results/``.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

ENGINES = ("step", "slice", "block")
MODES = ("unreplicated", "lock_sync", "thread_sched")

#: Loop trip counts per profile; the test profile only proves the
#: plumbing, the bench profile produces the numbers in README.md.
_REPS = {
    "test": {"tight_loop": 4_000, "call_heavy": 1_500,
             "monitor_heavy": 400},
    "bench": {"tight_loop": 300_000, "call_heavy": 60_000,
              "monitor_heavy": 8_000},
}

_KERNEL_SOURCES = {
    "tight_loop": """
class Main {
    static void main() {
        int i = 0;
        int acc = 0;
        while (i < %d) {
            acc = acc + i * 3 - (acc / 7);
            i = i + 1;
        }
        System.println("" + acc);
    }
}
""",
    "call_heavy": """
class Calc {
    int bias;
    Calc(int b) { this.bias = b; }
    int mix(int x) { return x + this.bias; }
    static int twist(int x) { return x - (x / 2); }
}
class Main {
    static void main() {
        Calc c = new Calc(7);
        int i = 0;
        int acc = 0;
        while (i < %d) {
            acc = Calc.twist(c.mix(acc) + i);
            i = i + 1;
        }
        System.println("" + acc);
    }
}
""",
    "monitor_heavy": """
class Box {
    int value;
    synchronized void add(int d) { this.value = this.value + d; }
    synchronized int get() { return this.value; }
}
class Main {
    static void main() {
        Box b = new Box();
        int i = 0;
        while (i < %d) {
            b.add(i);
            i = i + 1;
        }
        System.println("" + b.get());
    }
}
""",
}


def _compile(kernel, reps):
    from repro.minijava import compile_program
    return compile_program(_KERNEL_SOURCES[kernel] % reps)


def _run_cell(registry, engine, mode):
    """One (kernel, engine, mode) measurement."""
    from repro.env.environment import Environment
    from repro.replication.machine import ReplicatedJVM, run_unreplicated
    from repro.runtime.jvm import JVMConfig

    config = JVMConfig(engine=engine)
    start = time.perf_counter()
    if mode == "unreplicated":
        result, jvm = run_unreplicated(
            registry, "Main", env=Environment(), jvm_config=config,
        )
        elapsed = time.perf_counter() - start
        if not result.ok:
            raise RuntimeError(
                f"kernel failed under {engine}/{mode}: {result.uncaught}"
            )
        instructions = result.instructions
        digest = jvm.state_digest()
    else:
        machine = ReplicatedJVM(
            registry, env=Environment(), strategy=mode, jvm_config=config,
        )
        result = machine.run("Main")
        elapsed = time.perf_counter() - start
        if result.outcome != "primary_completed":
            raise RuntimeError(
                f"kernel failed under {engine}/{mode}: {result.outcome}"
            )
        instructions = machine.primary_metrics.instructions
        digest = machine.primary_jvm.state_digest()
    return {
        "instructions": instructions,
        "seconds": round(elapsed, 4),
        "instr_per_sec": round(instructions / elapsed) if elapsed else 0,
        "digest": digest[:16],
    }


def run_suite(profile="bench"):
    """Full kernel x mode x engine matrix as a JSON-ready report dict.

    Raises if any cell's two engines disagree on the final state
    digest or the instruction count — performance claims about a
    fast path that computes something else are worthless.
    """
    reps = _REPS[profile]
    kernels = {}
    for kernel in _KERNEL_SOURCES:
        registry = _compile(kernel, reps[kernel])
        modes = {}
        for mode in MODES:
            cell = {}
            for engine in ENGINES:
                cell[engine] = _run_cell(registry, engine, mode)
            for engine in ENGINES[1:]:
                if cell["step"]["digest"] != cell[engine]["digest"]:
                    raise AssertionError(
                        f"{kernel}/{mode}: engines diverged "
                        f"({cell['step']['digest']} != "
                        f"{cell[engine]['digest']} under {engine})"
                    )
                if (cell["step"]["instructions"]
                        != cell[engine]["instructions"]):
                    raise AssertionError(
                        f"{kernel}/{mode}: instruction counts differ "
                        f"({cell['step']['instructions']} != "
                        f"{cell[engine]['instructions']} under {engine})"
                    )
            step_rate = cell["step"]["instr_per_sec"]
            cell["speedup"] = (
                round(cell["slice"]["instr_per_sec"] / step_rate, 2)
                if step_rate else 0.0
            )
            cell["block_speedup"] = (
                round(cell["block"]["instr_per_sec"] / step_rate, 2)
                if step_rate else 0.0
            )
            modes[mode] = cell
        kernels[kernel] = {"reps": reps[kernel], "modes": modes}
    return {
        "profile": profile,
        "engines": list(ENGINES),
        "kernels": kernels,
        "tight_loop_speedup":
            kernels["tight_loop"]["modes"]["unreplicated"]["speedup"],
        "tight_loop_block_speedup":
            kernels["tight_loop"]["modes"]["unreplicated"]["block_speedup"],
    }


def render(report):
    from repro.harness.tables import render_table
    rows = []
    for kernel, entry in report["kernels"].items():
        for mode, cell in entry["modes"].items():
            rows.append([
                kernel, mode, cell["step"]["instructions"],
                f"{cell['step']['instr_per_sec'] / 1e6:.3f}",
                f"{cell['slice']['instr_per_sec'] / 1e6:.3f}",
                f"{cell['block']['instr_per_sec'] / 1e6:.3f}",
                f"{cell['speedup']:.2f}x",
                f"{cell['block_speedup']:.2f}x",
            ])
    return render_table(
        f"Execution engines, wall-clock Mbytecodes/s "
        f"(profile={report['profile']})",
        ["Kernel", "Mode", "Instructions", "step", "slice", "block",
         "slice/step", "block/step"],
        rows,
    )


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_engine_microbench(bench_profile, save_result):
    report = run_suite(bench_profile)
    save_result("interpreter_engines", render(report))
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    with open(os.path.join(results_dir, "BENCH_interpreter.json"), "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for entry in report["kernels"].values():
        for cell in entry["modes"].values():
            assert cell["speedup"] > 0
            assert cell["block_speedup"] > 0
    if bench_profile == "bench":
        # The batched loop must beat single-step decisively where
        # batches are long, and the compiled blocks must beat batching
        # decisively on top; noisy short runs only check the plumbing.
        assert report["tight_loop_speedup"] >= 2.0
        assert report["tight_loop_block_speedup"] >= 6.0


# ----------------------------------------------------------------------
# script entry point (CI perf smoke)
# ----------------------------------------------------------------------
def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default=os.environ.get(
        "REPRO_BENCH_PROFILE", "bench"), choices=sorted(_REPS))
    parser.add_argument("--json", default="BENCH_interpreter.json",
                        metavar="PATH",
                        help="write the report here")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        metavar="X",
                        help="fail when the unreplicated tight-loop "
                             "slice/step speedup is below X")
    parser.add_argument("--min-block-speedup", type=float, default=0.0,
                        metavar="X",
                        help="fail when the unreplicated tight-loop "
                             "block/step speedup is below X")
    args = parser.parse_args(argv)

    report = run_suite(args.profile)
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(render(report))
    speedup = report["tight_loop_speedup"]
    block_speedup = report["tight_loop_block_speedup"]
    print(f"tight-loop speedup: slice {speedup:.2f}x "
          f"(floor {args.min_speedup:.2f}x), "
          f"block {block_speedup:.2f}x "
          f"(floor {args.min_block_speedup:.2f}x)")
    if speedup < args.min_speedup or block_speedup < args.min_block_speedup:
        print("FAIL: fast path below the speedup floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

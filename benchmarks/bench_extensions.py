"""Extensions beyond the paper's evaluation, quantified.

E1 — interval-coalesced lock replication (the paper's §6 suggestion,
implemented as a third strategy): wire volume vs plain lock-sync.
E2 — hot backup (the paper's 'keeping the backup updated' remark,
implemented): post-crash recovery work vs a cold backup.
"""

from repro.env.environment import Environment
from repro.harness.tables import render_table
from repro.replication.machine import ReplicatedJVM
from repro.workloads import BY_NAME


def _run_strategy(workload, profile, strategy, **kw):
    env = Environment()
    workload.prepare_env(env, profile)
    machine = ReplicatedJVM(workload.compile(profile), env=env,
                            strategy=strategy, **kw)
    result = machine.run(workload.main_class)
    assert result.final_result.ok
    machine.channel.flush()
    return machine


def test_extension_interval_strategy(benchmark, bench_profile, save_result):
    """E1: the interval strategy ships far fewer records and bytes for
    lock-heavy workloads, while replay still reaches identical state."""
    def run_both():
        out = {}
        for workload_name in ("db", "mtrt"):
            workload = BY_NAME[workload_name]
            plain = _run_strategy(workload, bench_profile, "lock_sync")
            intervals = _run_strategy(workload, bench_profile,
                                      "lock_intervals")
            # replay equivalence for the interval strategy
            digest = intervals.primary_jvm.state_digest()
            intervals.replay_backup(workload.main_class)
            assert intervals.backup_jvm.state_digest() == digest
            out[workload_name] = (plain.primary_metrics,
                                  intervals.primary_metrics)
        return out

    data = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for name, (plain, intervals) in data.items():
        rows.append([
            name,
            plain.lock_records + plain.id_maps, intervals.lock_records,
            plain.bytes_sent, intervals.bytes_sent,
            plain.bytes_sent / max(intervals.bytes_sent, 1),
        ])
    save_result("extension_intervals", render_table(
        "Extension E1: per-acquisition records vs coalesced intervals",
        ["Workload", "Lock recs", "Interval recs",
         "Bytes (lock)", "Bytes (interval)", "Byte ratio"],
        rows,
    ))
    if bench_profile != "bench":
        return
    for name, (plain, intervals) in data.items():
        assert intervals.lock_records < plain.lock_records, name
        assert intervals.bytes_sent < plain.bytes_sent, name
    # db's single hot monitor coalesces massively
    plain_db, interval_db = data["db"]
    assert plain_db.lock_records > 10 * interval_db.lock_records


def test_extension_hot_backup_recovery(benchmark, bench_profile, save_result):
    """E2: the hot backup's post-crash recovery work is a fraction of
    the cold backup's full-log replay."""
    workload = BY_NAME["jess"]

    def measure():
        # a late crash: most of the run is already logged
        env = Environment()
        workload.prepare_env(env, bench_profile)
        probe = ReplicatedJVM(workload.compile(bench_profile), env=env,
                              strategy="lock_sync")
        probe.run(workload.main_class)
        crash_at = probe.shipper.injector.events - 1

        results = {}
        for hot in (False, True):
            env = Environment()
            workload.prepare_env(env, bench_profile)
            machine = ReplicatedJVM(
                workload.compile(bench_profile), env=env,
                strategy="lock_sync", hot_backup=hot, crash_at=crash_at,
            )
            outcome = machine.run(workload.main_class)
            assert outcome.failed_over and outcome.final_result.ok
            total = machine.backup_jvm.instructions
            recovery = total - (machine.hot_precrash_instructions if hot else 0)
            results["hot" if hot else "cold"] = (total, recovery)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [mode, total, recovery]
        for mode, (total, recovery) in sorted(results.items())
    ]
    save_result("extension_hot_backup", render_table(
        "Extension E2: backup instructions to recover after a late crash "
        "(jess, lock-sync)",
        ["Backup", "Total instructions", "Post-crash instructions"],
        rows,
    ))
    if bench_profile != "bench":
        return
    cold_total, cold_recovery = results["cold"]
    hot_total, hot_recovery = results["hot"]
    assert cold_recovery == cold_total          # cold replays everything
    assert hot_recovery < cold_recovery * 0.2   # hot had already caught up

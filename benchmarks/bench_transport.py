"""Output-commit latency as a function of the link's round-trip time.

The paper's output-commit protocol stalls the primary until the backup
acks the flushed log (§4.1) — on their single-switch LAN that wait was
negligible.  With the transport pluggable, we can ask what the
protocol costs on links it was *not* designed for: the benchmark sweeps
the injected one-way latency of a clean :class:`FaultyTransport` and
reports the ack wait per output commit, which should track the injected
RTT (2x one-way) almost exactly — the protocol adds nothing on top.

A lossy row at the end shows what retransmissions do to the same
figure: each dropped DATA message costs a retry timeout, not just an
RTT, so the per-commit wait jumps disproportionately.
"""

from repro.harness.tables import render_table
from repro.replication.transport import FaultProfile, FaultyTransport

#: Injected one-way latencies, in virtual-clock ticks.
LATENCIES = (0.0, 2.0, 8.0, 32.0, 128.0)


def _commit_wait(template, profile, seed=17):
    machine = template.clone(transport=FaultyTransport(profile, seed=seed))
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    metrics = machine.primary_metrics
    assert metrics.output_commits > 0
    return metrics, metrics.ack_wait_time / metrics.output_commits


def test_commit_latency_tracks_injected_rtt(benchmark, bench_profile,
                                            commit_heavy_template,
                                            save_result):
    def sweep():
        rows = {}
        for latency in LATENCIES:
            profile = FaultProfile(latency=latency,
                                   retry_timeout=8 * latency + 40.0)
            rows[latency] = _commit_wait(commit_heavy_template, profile)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lossy_metrics, lossy_wait = _commit_wait(
        commit_heavy_template,
        FaultProfile(latency=8.0, drop_rate=0.3, retry_timeout=60.0),
    )

    table = [
        [f"{latency:g}", f"{2 * latency:g}", metrics.output_commits,
         f"{wait:.1f}", metrics.retransmits]
        for latency, (metrics, wait) in sorted(rows.items())
    ]
    table.append(["8 (30% loss)", "16+", lossy_metrics.output_commits,
                  f"{lossy_wait:.1f}", lossy_metrics.retransmits])
    save_result("transport_commit_latency", render_table(
        "Output-commit ack wait vs injected link RTT (virtual ticks)",
        ["One-way latency", "RTT", "Commits", "Wait/commit", "Retransmits"],
        table,
    ))

    waits = [wait for _, (_, wait) in sorted(rows.items())]
    assert waits == sorted(waits)                  # monotone in RTT
    for latency, (metrics, wait) in rows.items():
        assert metrics.retransmits == 0            # clean link
        # The measured wait is the RTT minus the send's own clock tick
        # (the flush advances virtual time before the wait starts).
        assert wait >= 2 * latency - 2
    # The protocol's own contribution stays flat: going from RTT 4 to
    # RTT 256 raises the wait by (close to) exactly the RTT difference.
    overhead_low = rows[2.0][1] - 4.0
    overhead_high = rows[128.0][1] - 256.0
    assert abs(overhead_high - overhead_low) <= 0.25 * rows[128.0][1]
    # Loss costs more than latency: the lossy link's per-commit wait
    # exceeds the clean link's at the same injected latency.
    assert lossy_wait > rows[8.0][1]
    assert lossy_metrics.retransmits > 0

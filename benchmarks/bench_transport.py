"""Output-commit latency as a function of the link's round-trip time.

The paper's output-commit protocol stalls the primary until the backup
acks the flushed log (§4.1) — on their single-switch LAN that wait was
negligible.  With the transport pluggable, we can ask what the
protocol costs on links it was *not* designed for: the benchmark sweeps
the injected one-way latency of a clean :class:`FaultyTransport` and
reports the ack wait per output commit, which should track the injected
RTT (2x one-way) almost exactly — the protocol adds nothing on top.

A lossy row at the end shows what retransmissions do to the same
figure: each dropped DATA message costs a retry timeout, not just an
RTT, so the per-commit wait jumps disproportionately.
"""

from repro.harness.tables import render_table
from repro.replication.transport import FaultProfile, FaultyTransport

#: Injected one-way latencies, in virtual-clock ticks.
LATENCIES = (0.0, 2.0, 8.0, 32.0, 128.0)

#: Program used by the checkpoint-transfer benchmark — enough heap and
#: output traffic that the shipped snapshot spans several chunks.
_CKPT_SOURCE = """
class Main {
    static void main(String[] args) {
        int[] data = new int[96];
        for (int i = 0; i < 96; i++) { data[i] = i * i; }
        int fd = Files.open("ckpt.txt", "w");
        for (int i = 0; i < 6; i++) {
            Files.writeLine(fd, "row " + data[i]);
        }
        Files.close(fd);
        System.println("sum " + data[95]);
    }
}
"""


def _commit_wait(template, profile, seed=17):
    machine = template.clone(transport=FaultyTransport(profile, seed=seed))
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    metrics = machine.primary_metrics
    assert metrics.output_commits > 0
    return metrics, metrics.ack_wait_time / metrics.output_commits


def test_commit_latency_tracks_injected_rtt(benchmark, bench_profile,
                                            commit_heavy_template,
                                            save_result):
    def sweep():
        rows = {}
        for latency in LATENCIES:
            profile = FaultProfile(latency=latency,
                                   retry_timeout=8 * latency + 40.0)
            rows[latency] = _commit_wait(commit_heavy_template, profile)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lossy_metrics, lossy_wait = _commit_wait(
        commit_heavy_template,
        FaultProfile(latency=8.0, drop_rate=0.3, retry_timeout=60.0),
    )

    table = [
        [f"{latency:g}", f"{2 * latency:g}", metrics.output_commits,
         f"{wait:.1f}", metrics.retransmits]
        for latency, (metrics, wait) in sorted(rows.items())
    ]
    table.append(["8 (30% loss)", "16+", lossy_metrics.output_commits,
                  f"{lossy_wait:.1f}", lossy_metrics.retransmits])
    save_result("transport_commit_latency", render_table(
        "Output-commit ack wait vs injected link RTT (virtual ticks)",
        ["One-way latency", "RTT", "Commits", "Wait/commit", "Retransmits"],
        table,
    ))

    waits = [wait for _, (_, wait) in sorted(rows.items())]
    assert waits == sorted(waits)                  # monotone in RTT
    for latency, (metrics, wait) in rows.items():
        assert metrics.retransmits == 0            # clean link
        # The measured wait is the RTT minus the send's own clock tick
        # (the flush advances virtual time before the wait starts).
        assert wait >= 2 * latency - 2
    # The protocol's own contribution stays flat: going from RTT 4 to
    # RTT 256 raises the wait by (close to) exactly the RTT difference.
    overhead_low = rows[2.0][1] - 4.0
    overhead_high = rows[128.0][1] - 256.0
    assert abs(overhead_high - overhead_low) <= 0.25 * rows[128.0][1]
    # Loss costs more than latency: the lossy link's per-commit wait
    # exceeds the clean link's at the same injected latency.
    assert lossy_wait > rows[8.0][1]
    assert lossy_metrics.retransmits > 0


def _chained_failover(latency, *, crash_at=12, chunk_bytes=256, seed=23):
    """One supervised run with a seeded generation-0 crash over a clean
    link with the given one-way latency.  Returns (group, result)."""
    from repro.env.environment import Environment
    from repro.minijava import compile_program
    from repro.replication.supervisor import ReplicaGroup

    profile = FaultProfile(latency=latency,
                           retry_timeout=8 * latency + 40.0)
    group = ReplicaGroup(
        compile_program(_CKPT_SOURCE),
        env=Environment(),
        strategy="lock_sync",
        crash_schedule={0: crash_at},
        transport=lambda generation: FaultyTransport(
            profile, seed=seed + 97 * generation),
        chunk_bytes=chunk_bytes,
        batch_records=1,
    )
    return group, group.run("Main")


def test_checkpoint_transfer_cost_tracks_rtt(benchmark, bench_profile,
                                             save_result):
    """Checkpoint state transfer: bytes shipped are a property of the
    program state (invariant under link latency), while the transfer
    commit's stall tracks the round-trip time like any other ack."""
    from repro.harness.costs import DEFAULT_COST_MODEL

    def sweep():
        rows = {}
        for latency in LATENCIES:
            group, result = _chained_failover(latency)
            assert result.outcome == "completed"
            assert result.failures_survived == 1
            rows[latency] = (group, result)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = []
    for latency, (group, result) in sorted(rows.items()):
        chunks = sum(r.checkpoint_chunks for r in group.reports)
        transfer_wait = sum(
            r.primary_metrics.checkpoint_transfer_wait
            for r in group.reports if r.primary_metrics is not None
        )
        priced = sum(
            DEFAULT_COST_MODEL.checkpoint_component(r.primary_metrics)
            for r in group.reports if r.primary_metrics is not None
        )
        table.append([
            f"{latency:g}", result.final_generation + 1, chunks,
            result.checkpoint_bytes_shipped,
            f"{transfer_wait:.1f}", f"{priced:.0f}",
        ])
    save_result("transport_checkpoint_transfer", render_table(
        "Checkpoint state transfer vs injected link latency",
        ["One-way latency", "Generations", "Chunks", "Bytes",
         "Transfer wait", "Priced capture cost"],
        table,
    ))

    byte_counts = {result.checkpoint_bytes_shipped
                   for _, result in rows.values()}
    assert len(byte_counts) == 1               # bytes invariant under RTT
    waits = [
        sum(r.primary_metrics.checkpoint_transfer_wait
            for r in group.reports if r.primary_metrics is not None)
        for _, (group, _) in sorted(rows.items())
    ]
    assert waits == sorted(waits)              # wait monotone in RTT
    assert waits[-1] > waits[0]                # and actually moves
    # Pricing is charged per chunk/byte, so it is also RTT-invariant.
    assert DEFAULT_COST_MODEL.checkpoint_component(
        rows[0.0][0].reports[0].primary_metrics) > 0

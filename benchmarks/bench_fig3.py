"""Figure 3: normalized overhead breakdown for replicated lock
acquisition (communication / lock acquire / pessimistic / misc over
the original JVM).

Shape claims asserted (paper §5): the overhead ranges from a few
percent (mpegaudio) to ~4x (db); communication is the dominant source
of overhead; db's cost is driven by its lock-acquisition count.
"""

from repro.harness.runner import get_all_runs
from repro.harness.tables import WORKLOAD_ORDER, fig3_data, render_fig3


def test_fig3(benchmark, bench_profile, save_result):
    runs = benchmark.pedantic(
        lambda: get_all_runs(bench_profile), rounds=1, iterations=1,
    )
    save_result("fig3", render_fig3(runs))
    if bench_profile != "bench":
        # Shape claims are calibrated for the full bench profile; a
        # smoke run (REPRO_BENCH_PROFILE=test) only checks execution.
        return

    data = fig3_data(runs)

    # Overall range: mpegaudio ~5%, db ~375% in the paper.
    assert data["mpegaudio"]["total"] < 1.2
    assert data["db"]["total"] > 2.5
    totals = {w: data[w]["total"] for w in WORKLOAD_ORDER}
    assert totals["db"] == max(totals.values())

    # "communication overhead is the dominant source of overhead":
    # for every lock-heavy workload the communication component exceeds
    # the bookkeeping (lock acquire) component.
    for w in ("jess", "jack", "db"):
        assert data[w]["communication"] > data[w]["lock_acquire"] > 0

    # "The large overhead in Db is a result of processing its more than
    # 53 million lock acquisitions": overhead ordering follows the
    # lock-rate ordering db > jack > jess > mtrt > compress/mpeg.
    assert data["db"]["total"] > data["jess"]["total"]
    assert data["jack"]["total"] > data["mtrt"]["total"]
    assert data["jess"]["total"] > data["compress"]["total"]

    # "the amount of communication ... is an effective predictor":
    # the communication component correlates with records sent.
    comm = [(runs[w].lock_sync.primary.records_sent,
             data[w]["communication"]) for w in WORKLOAD_ORDER]
    comm.sort()
    values = [c for _, c in comm]
    assert values == sorted(values)

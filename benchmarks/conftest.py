"""Shared benchmark infrastructure.

All four table/figure benchmarks consume the same five executions per
workload; :func:`repro.harness.runner.get_all_runs` memoizes them, so
the full matrix (6 workloads x 5 configurations) runs once per pytest
session.  Rendered tables are also written to ``benchmarks/results/``
so EXPERIMENTS.md can reference the exact output.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Profile for benchmark runs.  Override with REPRO_BENCH_PROFILE=test
#: for a fast smoke pass.
PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "bench")


@pytest.fixture(scope="session")
def bench_profile():
    return PROFILE


@pytest.fixture(scope="session")
def commit_heavy_template():
    """A completed reference machine for transport benchmarks.

    A machine runs once; configuration sweeps stamp out fresh machines
    with :meth:`ReplicatedJVM.clone` (same program, new environment and
    transport) instead of re-constructing by hand.
    """
    from repro.env.environment import Environment
    from repro.minijava import compile_program
    from repro.replication.machine import ReplicatedJVM

    source = """
    class Main {
        static void main(String[] args) {
            int fd = Files.open("commits.txt", "w");
            for (int i = 0; i < 12; i++) {
                Files.writeLine(fd, "row " + i);
                System.println("commit " + i);
            }
            Files.close(fd);
        }
    }
    """
    machine = ReplicatedJVM(compile_program(source), env=Environment())
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    return machine


@pytest.fixture(scope="session")
def save_result():
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name, text):
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print()
        print(text)

    return _save

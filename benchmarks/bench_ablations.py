"""Ablations for the design choices DESIGN.md calls out.

A1 — record buffering (paper: the primary buffers records and sends
them periodically or on output commit).
A2 — progress-tracking cost (paper: ~12 instructions added to the
dispatch loop dominate TS overhead; a deterministic-yield-point design
would shrink it).
A3 — interval coalescing (paper §6: DejaVu-style logical intervals
would reduce mtrt's events by orders of magnitude).
"""

from repro.env.environment import Environment
from repro.harness.ablations import (
    buffering_sweep,
    coalesce_lock_records,
    tracking_sweep,
)
from repro.harness.costs import DEFAULT_COST_MODEL
from repro.harness.runner import get_all_runs
from repro.harness.tables import render_table
from repro.replication.machine import ReplicatedJVM
from repro.workloads import BY_NAME


def test_ablation_buffering(benchmark, bench_profile, save_result):
    """A1: bigger batches, fewer messages, cheaper communication —
    with diminishing returns once per-byte cost dominates."""
    sweep = benchmark.pedantic(
        lambda: buffering_sweep(BY_NAME["db"], bench_profile,
                                batch_sizes=(1, 16, 64, 512)),
        rounds=1, iterations=1,
    )
    rows = [[batch, r["messages"], r["records"], r["bytes"],
             r["communication_cost"]] for batch, r in sorted(sweep.items())]
    save_result("ablation_buffering", render_table(
        "Ablation A1: record buffering (db, lock-sync primary)",
        ["Batch", "Messages", "Records", "Bytes", "Comm cost"], rows,
    ))

    if bench_profile != "bench":
        return
    messages = [sweep[b]["messages"] for b in sorted(sweep)]
    assert messages == sorted(messages, reverse=True)
    assert sweep[1]["messages"] > 50 * sweep[512]["messages"]
    # identical records/bytes regardless of batching
    assert len({sweep[b]["records"] for b in sweep}) == 1
    cost = [sweep[b]["communication_cost"] for b in sorted(sweep)]
    assert cost == sorted(cost, reverse=True)
    # diminishing returns: the 64->512 saving is smaller than 1->16
    assert (cost[0] - cost[1]) > (cost[2] - cost[3])


def test_ablation_tracking_cost(benchmark, bench_profile, save_result):
    """A2: thread-sched overhead as a function of the per-bytecode
    tracking charge; charge 0.0 models deterministic yield points."""
    runs = benchmark.pedantic(
        lambda: get_all_runs(bench_profile), rounds=1, iterations=1,
    )
    rows = []
    results = {}
    for name in ("compress", "mpegaudio", "db"):
        run = runs[name]
        base = DEFAULT_COST_MODEL.base_time(run.baseline)
        sweep = tracking_sweep(run.thread_sched.primary, base)
        results[name] = sweep
        rows.append([name] + [sweep[c] for c in sorted(sweep)])
    save_result("ablation_tracking", render_table(
        "Ablation A2: TS overhead vs per-bytecode tracking charge",
        ["Workload", "0.0", "0.1", "0.4", "1.0"], rows,
    ))

    if bench_profile != "bench":
        return
    for name, sweep in results.items():
        values = [sweep[c] for c in sorted(sweep)]
        assert values == sorted(values), name          # monotone
        # With no per-bytecode tracking (Jikes-style deterministic
        # scheduler), the remaining overhead is small — the paper's
        # "lower overhead substantially" expectation.
        assert sweep[0.0] - 1 < 0.35 * (sweep[1.0] - 1), name


def test_ablation_interval_coalescing(benchmark, bench_profile, save_result):
    """A3: consecutive same-thread lock acquisitions collapse into
    intervals; mtrt's log shrinks by orders of magnitude."""
    def run_mtrt():
        workload = BY_NAME["mtrt"]
        env = Environment()
        workload.prepare_env(env, bench_profile)
        machine = ReplicatedJVM(workload.compile(bench_profile), env=env,
                                strategy="lock_sync")
        result = machine.run(workload.main_class)
        assert result.final_result.ok
        machine.channel.flush()
        return coalesce_lock_records(machine.channel.backup_log())

    records, intervals = benchmark.pedantic(run_mtrt, rounds=1, iterations=1)
    save_result("ablation_intervals", render_table(
        "Ablation A3: interval coalescing (mtrt, lock acquisition log)",
        ["Representation", "Events"],
        [["per-acquisition records", records],
         ["coalesced intervals", intervals],
         ["reduction factor", records / max(intervals, 1)]],
    ))
    if bench_profile != "bench":
        return
    assert records > intervals
    # The paper reports 4 orders of magnitude for real mtrt (700k
    # acquisitions, 56 intervals).  The reduction factor scales with
    # acquisitions-per-time-slice; our quantum is scaled down along
    # with the workload, so the factor is smaller but still material.
    assert records / max(intervals, 1) >= 2

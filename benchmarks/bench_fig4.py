"""Figure 4: normalized overhead breakdown for replicated thread
scheduling (communication / rescheduling / pessimistic / misc).

Shape claims asserted (paper §5): the overhead is dominated by the
Misc bookkeeping component (the ~12 instructions added to the bytecode
dispatch loop); communication is far smaller than under lock
replication; only mtrt pays any rescheduling cost.
"""

from repro.harness.runner import get_all_runs
from repro.harness.tables import (
    WORKLOAD_ORDER,
    averages,
    fig3_data,
    fig4_data,
    render_fig4,
)


def test_fig4(benchmark, bench_profile, save_result):
    runs = benchmark.pedantic(
        lambda: get_all_runs(bench_profile), rounds=1, iterations=1,
    )
    save_result("fig4", render_fig4(runs))
    if bench_profile != "bench":
        # Shape claims are calibrated for the full bench profile; a
        # smoke run (REPRO_BENCH_PROFILE=test) only checks execution.
        return

    data = fig4_data(runs)

    # Average ~60% in the paper; bounded range here.
    avg = averages(data, "total") - 1
    assert 0.25 < avg < 1.1, f"avg {avg:.2f}"

    # "the overhead of replicated thread scheduling is dominated by the
    # Misc. Overhead, which captures ... extra bookkeeping".
    for w in WORKLOAD_ORDER:
        overhead_components = {
            k: v for k, v in data[w].items() if k not in ("base", "total")
        }
        assert max(overhead_components, key=overhead_components.get) \
            in ("misc", "pessimistic"), (w, overhead_components)
        assert data[w]["misc"] > data[w]["communication"], w

    # "Replicating thread scheduling yields a lower communication
    # overhead than replicating lock acquisition" — per workload.
    lock = fig3_data(runs)
    for w in WORKLOAD_ORDER:
        assert data[w]["communication"] <= lock[w]["communication"] + 1e-9, w

    # "only Mtrt logs any thread schedule records to the backup."
    for w in WORKLOAD_ORDER:
        if w == "mtrt":
            assert data[w]["rescheduling"] > 0
        else:
            assert data[w]["rescheduling"] == 0

    # Total stays much flatter across workloads than under lock-sync
    # (no workload explodes like db does in Figure 3).
    totals = [data[w]["total"] for w in WORKLOAD_ORDER]
    assert max(totals) / min(totals) < 2.0

"""Workload programs: compile, run, and exhibit their Table 2 profiles."""

import pytest

from repro.env.environment import Environment
from repro.replication.machine import ReplicaSettings, run_unreplicated
from repro.workloads import ALL_WORKLOADS, BY_NAME


@pytest.fixture(scope="module")
def runs():
    """One baseline run per workload at the test profile."""
    results = {}
    for w in ALL_WORKLOADS:
        env = Environment()
        w.prepare_env(env, "test")
        result, jvm = run_unreplicated(w.compile("test"), w.main_class,
                                       env=env)
        assert result.ok, (w.name, result.uncaught)
        results[w.name] = (result, jvm, env)
    return results


def test_registry_has_six_paper_benchmarks():
    assert sorted(BY_NAME) == [
        "compress", "db", "jack", "jess", "mpegaudio", "mtrt",
    ]


def test_all_workloads_complete(runs):
    for name, (result, _, env) in runs.items():
        assert result.ok
        assert env.console.lines(), name  # each prints a checksum line


def test_only_mtrt_is_multithreaded(runs):
    for w in ALL_WORKLOADS:
        result = runs[w.name][0]
        if w.name == "mtrt":
            assert w.multithreaded
            assert result.reschedules > 10
        else:
            assert not w.multithreaded
            assert result.reschedules <= 2


def test_db_has_most_lock_acquisitions(runs):
    locks = {name: r.lock_acquisitions for name, (r, _, _) in runs.items()}
    assert locks["db"] == max(locks.values())
    assert locks["db"] > 10 * locks["compress"]


def test_jack_locks_most_distinct_objects(runs):
    objects = {name: jvm.sync.monitors_created
               for name, (_, jvm, _) in runs.items()}
    assert objects["jack"] == max(objects.values())
    assert objects["jack"] > 100


def test_compress_and_mpegaudio_have_few_locks(runs):
    for name in ("compress", "mpegaudio"):
        assert runs[name][0].lock_acquisitions < 50, name


def test_db_largest_l_asn_is_hot_monitor(runs):
    _, jvm, _ = runs["db"]
    # a single hot monitor: largest l_asn ~ total acquisitions
    assert jvm.sync.largest_l_asn > 0.9 * jvm.sync.total_acquisitions


def test_workloads_deterministic_across_scheduler_seeds(runs):
    """All six workloads are race-free: their console output must not
    depend on the scheduler seed (R4A sanity for lock-sync)."""
    for w in ALL_WORKLOADS:
        outputs = set()
        for seed in (11, 77):
            env = Environment()
            w.prepare_env(env, "test")
            run_unreplicated(w.compile("test"), w.main_class, env=env,
                             settings=ReplicaSettings(seed, 0, 5))
            outputs.add(env.console.transcript())
        assert len(outputs) == 1, f"{w.name} output depends on schedule"


def test_profiles_exist_for_test_and_bench():
    for w in ALL_WORKLOADS:
        for profile in ("test", "bench"):
            params = w.params_for(profile)
            assert params, (w.name, profile)
        with pytest.raises(KeyError):
            w.params_for("gigantic")


def test_bench_profile_is_larger_than_test():
    for w in ALL_WORKLOADS:
        test_p = w.params_for("test")
        bench_p = w.params_for("bench")
        assert any(bench_p[k] > test_p[k] for k in test_p), w.name


def test_setup_populates_input_files():
    for w in ALL_WORKLOADS:
        env = Environment()
        w.prepare_env(env, "test")
        assert env.fs.paths(), w.name

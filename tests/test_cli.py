"""Command-line interface."""

import pytest

from repro.cli import main

HELLO = """
class Main {
    static void main(String[] args) {
        System.println("hello " + args.length);
    }
}
"""

BROKEN = "class Main { static void main(String[] args) { int x = ; } }"


@pytest.fixture
def hello_file(tmp_path):
    path = tmp_path / "hello.java"
    path.write_text(HELLO)
    return str(path)


def test_run_prints_program_output(hello_file, capsys):
    assert main(["run", hello_file]) == 0
    out = capsys.readouterr().out
    assert out == "hello 0\n"


def test_run_passes_args(hello_file, capsys):
    assert main(["run", hello_file, "--args", "a", "b"]) == 0
    assert capsys.readouterr().out == "hello 2\n"


def test_run_stats_go_to_stderr(hello_file, capsys):
    main(["run", hello_file, "--stats"])
    err = capsys.readouterr().err
    assert "instructions=" in err


def test_run_uncaught_exception_sets_exit_code(tmp_path, capsys):
    path = tmp_path / "boom.java"
    path.write_text("""
        class Main {
            static void main(String[] args) {
                throw new RuntimeException("boom");
            }
        }
    """)
    assert main(["run", str(path)]) == 1
    assert "RuntimeException: boom" in capsys.readouterr().err


def test_compile_error_reported(tmp_path, capsys):
    path = tmp_path / "bad.java"
    path.write_text(BROKEN)
    assert main(["run", str(path)]) == 2
    assert "error:" in capsys.readouterr().err


def test_missing_file_reported(capsys):
    assert main(["run", "/nonexistent/x.java"]) == 2


def test_replicate_with_crash(hello_file, capsys):
    assert main(["replicate", hello_file, "--crash-at", "2",
                 "--strategy", "thread_sched"]) == 0
    captured = capsys.readouterr()
    assert captured.out == "hello 0\n"           # exactly once
    assert "failover_completed" in captured.err


def test_replicate_without_crash(hello_file, capsys):
    assert main(["replicate", hello_file]) == 0
    assert "primary_completed" in capsys.readouterr().err


def test_disasm_lists_methods(hello_file, capsys):
    assert main(["disasm", hello_file]) == 0
    out = capsys.readouterr().out
    assert "--- Main.main/1" in out
    assert "invokestatic System.println/1/0" in out


def test_disasm_filters_by_method(tmp_path, capsys):
    path = tmp_path / "two.java"
    path.write_text("""
        class Main {
            static void main(String[] args) { helper(); }
            static void helper() { }
        }
    """)
    assert main(["disasm", str(path), "--method", "Main.helper/0"]) == 0
    out = capsys.readouterr().out
    assert "Main.helper/0" in out
    assert "Main.main/1" not in out


def test_workloads_lists_all_six(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("jess", "jack", "compress", "db", "mpegaudio", "mtrt"):
        assert name in out


def test_bench_single_experiment(capsys):
    from repro.harness.runner import clear_cache
    clear_cache()
    assert main(["bench", "--profile", "test",
                 "--experiment", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Locks Acquired" in out

"""Class/method/field model invariants."""

import pytest

from repro.bytecode.assembler import assemble
from repro.classfile.model import (
    JClass, JField, JMethod, default_value, OBJECT_CLASS,
)
from repro.errors import ClassFormatError, VerifyError


def _ret():
    return assemble("return\n", max_locals=4)


def test_default_values():
    assert default_value("int") == 0
    assert default_value("float") == 0.0
    assert default_value("str") == ""
    assert default_value("ref") is None
    with pytest.raises(ClassFormatError):
        default_value("long")


def test_field_type_validation():
    assert JField("x", "int").type == "int"
    with pytest.raises(ClassFormatError):
        JField("x", "double")


def test_method_native_xor_code():
    with pytest.raises(ClassFormatError, match="no body"):
        JMethod("m", 0, False)
    with pytest.raises(ClassFormatError, match="must not carry code"):
        JMethod("m", 0, False, _ret(), is_native=True)
    assert JMethod("m", 0, False, is_native=True).code is None


def test_method_negative_arity():
    with pytest.raises(ClassFormatError):
        JMethod("m", -1, False, _ret())


def test_method_verifies_body_at_construction():
    bad = assemble("iadd\nreturn\n")
    with pytest.raises(VerifyError, match="'m'"):
        JMethod("m", 0, False, bad)


def test_method_signature_uses_declaring_class():
    cls = JClass("Widget", "Object")
    m = JMethod("poke", 2, False, _ret(), is_static=True)
    cls.add_method(m)
    assert m.qualified_name == "Widget.poke"
    assert m.signature == "Widget.poke/2"


def test_duplicate_method_same_arity_rejected():
    cls = JClass("A", "Object")
    cls.add_method(JMethod("m", 1, False, _ret(), is_static=True))
    with pytest.raises(ClassFormatError, match="duplicate"):
        cls.add_method(JMethod(
            "m", 1, True, assemble("iconst 0\nvreturn\n", max_locals=1),
            is_static=True,
        ))


def test_overload_by_arity_allowed():
    cls = JClass("A", "Object")
    cls.add_method(JMethod("m", 0, False, _ret(), is_static=True))
    cls.add_method(JMethod("m", 1, False, _ret(), is_static=True))
    assert ("m", 0) in cls.methods and ("m", 1) in cls.methods


def test_duplicate_field_rejected():
    cls = JClass("A", "Object")
    cls.add_field(JField("x", "int"))
    with pytest.raises(ClassFormatError):
        cls.add_field(JField("x", "float"))


def test_root_class_has_no_super():
    assert JClass(OBJECT_CLASS).super_name is None
    assert JClass("Child").super_name == OBJECT_CLASS
    assert JClass("Child", "").super_name == OBJECT_CLASS


def test_class_requires_name():
    with pytest.raises(ClassFormatError):
        JClass("")

"""Class registry: linking, resolution, hierarchy queries."""

import pytest

from repro.bytecode.assembler import assemble
from repro.classfile.loader import ClassRegistry
from repro.classfile.model import JClass, JField, JMethod
from repro.errors import ClassFormatError, LinkageError


def _ret():
    return assemble("return\n", max_locals=4)


def _registry():
    reg = ClassRegistry()
    animal = JClass("Animal", "Object")
    animal.add_field(JField("legs", "int"))
    animal.add_field(JField("kingdom", "str", is_static=True))
    animal.add_method(JMethod("speak", 0, False, _ret()))
    dog = JClass("Dog", "Animal")
    dog.add_field(JField("name", "str"))
    dog.add_method(JMethod("speak", 0, False, _ret()))
    dog.add_method(JMethod("fetch", 1, False, _ret()))
    reg.register(animal)
    reg.register(dog)
    return reg


def test_object_exists_by_default():
    reg = ClassRegistry()
    assert reg.resolve("Object").name == "Object"
    assert reg.lookup_method("Object", "<init>", 0) is not None


def test_resolve_unknown_class():
    with pytest.raises(LinkageError, match="unknown class"):
        ClassRegistry().resolve("Ghost")


def test_register_twice_rejected():
    reg = ClassRegistry()
    reg.register(JClass("A"))
    with pytest.raises(ClassFormatError):
        reg.register(JClass("A"))


def test_unknown_superclass_detected_at_link():
    reg = ClassRegistry()
    reg.register(JClass("Orphan", "Missing"))
    with pytest.raises(LinkageError, match="unknown class 'Missing'"):
        reg.resolve("Orphan")


def test_inheritance_cycle_detected():
    reg = ClassRegistry()
    reg.register(JClass("A", "B"))
    reg.register(JClass("B", "A"))
    with pytest.raises(LinkageError, match="cycle"):
        reg.resolve("A")


def test_virtual_lookup_prefers_override():
    reg = _registry()
    assert reg.lookup_method("Dog", "speak", 0).declaring_class.name == "Dog"
    assert reg.lookup_method("Animal", "speak", 0).declaring_class.name \
        == "Animal"


def test_lookup_walks_to_superclass():
    reg = _registry()
    assert reg.lookup_method("Dog", "<init>", 0).declaring_class.name \
        == "Object"


def test_lookup_respects_arity():
    reg = _registry()
    assert reg.lookup_method("Dog", "fetch", 1).nargs == 1
    with pytest.raises(LinkageError):
        reg.lookup_method("Dog", "fetch", 2)


def test_lookup_method_cache_consistency():
    reg = _registry()
    first = reg.lookup_method("Dog", "speak", 0)
    assert reg.lookup_method("Dog", "speak", 0) is first


def test_field_lookup_inherited():
    reg = _registry()
    assert reg.lookup_field("Dog", "legs").name == "legs"
    with pytest.raises(LinkageError):
        reg.lookup_field("Dog", "tail")


def test_instance_fields_root_first_order():
    reg = _registry()
    names = [f.name for f in reg.instance_fields("Dog")]
    assert names == ["legs", "name"]  # statics excluded


def test_is_subtype():
    reg = _registry()
    assert reg.is_subtype("Dog", "Animal")
    assert reg.is_subtype("Dog", "Object")
    assert reg.is_subtype("Dog", "Dog")
    assert not reg.is_subtype("Animal", "Dog")
    with pytest.raises(LinkageError):
        reg.is_subtype("Ghost", "Object")


def test_class_names_sorted():
    reg = _registry()
    assert reg.class_names() == sorted(reg.class_names())
    assert "Object" in reg.class_names()


def test_registering_invalidates_cache():
    reg = _registry()
    reg.lookup_method("Dog", "speak", 0)
    cat = JClass("Cat", "Animal")
    reg.register(cat)
    assert reg.lookup_method("Cat", "speak", 0).declaring_class.name \
        == "Animal"

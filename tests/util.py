"""Shared test helpers."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bytecode.assembler import assemble
from repro.classfile.model import JClass, JField, JMethod
from repro.env.environment import Environment
from repro.minijava import compile_program
from repro.runtime.jvm import JVM, JVMConfig, RunResult
from repro.runtime.stdlib import default_natives, new_program_registry


def run_minijava(
    source: str,
    main_class: str = "Main",
    env: Optional[Environment] = None,
    config: Optional[JVMConfig] = None,
    seed: int = 0,
) -> Tuple[RunResult, JVM, Environment]:
    """Compile and run a MiniJava program on an unreplicated JVM."""
    env = env or Environment()
    registry = compile_program(source)
    cfg = config or JVMConfig(scheduler_seed=seed, max_instructions=20_000_000)
    jvm = JVM(registry, default_natives(), env.attach("test"), cfg)
    result = jvm.run(main_class)
    return result, jvm, env


def console_lines(env: Environment) -> List[str]:
    return env.console.lines()


def run_expect(source: str, *expected_lines: str, seed: int = 0) -> None:
    """Run a program and assert its console output matches exactly."""
    result, _, env = run_minijava(source, seed=seed)
    assert result.ok, f"uncaught: {result.uncaught}"
    assert console_lines(env) == list(expected_lines)


def run_asm_main(
    body: str,
    max_locals: int = 4,
    env: Optional[Environment] = None,
    extra_classes: Optional[List[JClass]] = None,
    config: Optional[JVMConfig] = None,
) -> Tuple[RunResult, JVM, Environment]:
    """Run hand-written assembly as ``Main.main``."""
    env = env or Environment()
    registry = new_program_registry()
    main_cls = JClass("Main", "Object")
    main_cls.add_method(JMethod(
        "main", 0, False, assemble(body, max_locals=max_locals),
        is_static=True,
    ))
    registry.register(main_cls)
    for cls in extra_classes or []:
        registry.register(cls)
    cfg = config or JVMConfig(max_instructions=5_000_000)
    jvm = JVM(registry, default_natives(), env.attach("test"), cfg)
    result = jvm.run("Main")
    return result, jvm, env

"""The sharded fleet: routing, traffic determinism, crash-under-load.

The headline property (the paper's availability claim, scaled out): a
fleet of shard groups serving sustained open-loop traffic keeps
serving while one shard's primary fail-stops — the failover costs tail
latency on that shard only, and every request still gets exactly one
response whose text matches the serial reference model.
"""

import pytest

from repro.errors import ReplicationError
from repro.fleet import (
    Fleet,
    TrafficSpec,
    generate,
    key_of,
    reference_responses,
    shard_of,
)


# ======================================================================
# Traffic generation
# ======================================================================
def test_traffic_is_deterministic_under_the_seed():
    spec = TrafficSpec(n_requests=100, seed=42)
    assert generate(spec) == generate(spec)
    assert generate(spec) != generate(TrafficSpec(n_requests=100, seed=43))


def test_traffic_arrivals_are_monotone_and_open_loop():
    requests = generate(TrafficSpec(qps=200.0, n_requests=300))
    arrivals = [r.arrival_ms for r in requests]
    assert arrivals == sorted(arrivals)
    # Open-loop: the mean inter-arrival gap tracks the configured QPS.
    mean_gap = arrivals[-1] / (len(arrivals) - 1)
    assert 2.0 < mean_gap < 10.0       # nominal 5ms at 200 QPS


def test_request_ids_are_unique():
    requests = generate(TrafficSpec(n_requests=250))
    assert len({r.rid for r in requests}) == 250


def test_reference_model_applies_ops_serially():
    spec = TrafficSpec(n_requests=50, seed=9)
    requests = generate(spec)
    expected = reference_responses(requests)
    assert set(expected) == {r.rid for r in requests}
    for req in requests:
        if req.op == "put":
            assert expected[req.rid] == "stored"
        else:
            assert expected[req.rid] == "miss" or \
                expected[req.rid].startswith("v=")


# ======================================================================
# Routing
# ======================================================================
def test_router_partitions_the_keyspace():
    keyspace, n_shards = 64, 3
    owners = {key: shard_of(key, n_shards) for key in range(keyspace)}
    assert set(owners.values()) == set(range(n_shards))
    # A partition: every key has exactly one owner, stable across calls.
    assert owners == {k: shard_of(k, n_shards) for k in range(keyspace)}


def test_key_extraction_from_request_text():
    assert key_of("c0r00001 put 17 944") == 17
    assert key_of("c3r00044 get 5") == 5
    with pytest.raises(ReplicationError):
        key_of("malformed")
    with pytest.raises(ReplicationError):
        key_of("rid op notakey")


def test_fleet_rejects_empty_fleet():
    with pytest.raises(ReplicationError):
        Fleet(0)


# ======================================================================
# Serving
# ======================================================================
def test_single_shard_fleet_serves_exactly_once():
    fleet = Fleet(1)
    metrics = fleet.serve_open_loop(TrafficSpec(n_requests=60))
    assert metrics.exactly_once
    assert metrics.responses_committed == 60
    assert metrics.per_shard[0].requests_routed == 60


def test_fleet_spreads_traffic_across_shards():
    fleet = Fleet(3)
    metrics = fleet.serve_open_loop(TrafficSpec(n_requests=120))
    assert metrics.exactly_once
    routed = [s.requests_routed for s in metrics.per_shard]
    assert sum(routed) == 120
    assert all(n > 0 for n in routed)
    assert metrics.p99_latency_ms >= metrics.p50_latency_ms > 0
    assert metrics.throughput_rps > 0


def test_fleet_crash_under_load_is_exactly_once():
    """The acceptance scenario: 3 shards, 500 sustained requests, one
    primary fail-stops mid-load, fails over, and re-arms a fresh
    backup — with zero lost, duplicated, or wrong responses."""
    crash_shard = 1
    fleet = Fleet(3, crash_schedule_for=(
        lambda s: {0: 40} if s == crash_shard else None
    ))
    spec = TrafficSpec(qps=400.0, n_requests=500, n_clients=8)
    metrics = fleet.serve_open_loop(spec)

    assert metrics.requests_offered == 500
    assert metrics.responses_committed == 500
    assert metrics.exactly_once
    assert metrics.failovers_absorbed == 1

    hit = metrics.per_shard[crash_shard]
    assert hit.failovers_absorbed == 1
    assert hit.generations == 2        # crashed gen + completing gen
    # The other shards never noticed: single generation, no requeues.
    for shard, sm in enumerate(metrics.per_shard):
        if shard != crash_shard:
            assert sm.generations == 1
            assert sm.requests_requeued == 0
    # The failover is visible as tail latency on the hit shard only.
    others_p99 = max(
        sm.as_dict()["p99_latency_ms"]
        for shard, sm in enumerate(metrics.per_shard)
        if shard != crash_shard
    )
    assert hit.as_dict()["p99_latency_ms"] > 10 * others_p99


def test_fleet_responses_match_serial_reference():
    """Committed response text equals the serial reference model's,
    request by request, even across a failover."""
    spec = TrafficSpec(n_requests=200, seed=77)
    requests = generate(spec)
    expected = reference_responses(requests)
    fleet = Fleet(3, crash_schedule_for=(
        lambda s: {0: 30} if s == 0 else None
    ))
    metrics = fleet.serve_open_loop(requests)
    assert metrics.exactly_once
    for shard, group in enumerate(fleet.groups):
        for req in requests:
            if shard_of(req.key, fleet.n_shards) == shard:
                assert group.env.responses.get(req.rid) == expected[req.rid]


def test_fleet_absorbs_crashes_on_multiple_shards():
    fleet = Fleet(3, crash_schedule_for=(
        lambda s: {0: 25} if s in (0, 2) else None
    ))
    metrics = fleet.serve_open_loop(TrafficSpec(n_requests=300, seed=5))
    assert metrics.exactly_once
    assert metrics.failovers_absorbed == 2


def test_fleet_metrics_report_is_json_shaped():
    fleet = Fleet(2)
    metrics = fleet.serve_open_loop(TrafficSpec(n_requests=40))
    report = metrics.as_dict()
    assert report["exactly_once"] is True
    assert report["n_shards"] == 2
    assert len(report["per_shard"]) == 2
    assert report["throughput_rps"] > 0

"""Bounded logs under sustained fleet traffic.

Long-run serving is where unbounded logs actually hurt: a shard that
retains every record since boot replays its whole life on failover.
With steady-state incremental checkpointing the retained log's
high-water mark must stay flat as traffic grows — bounded by the
checkpoint interval, not the run length — and a mid-load failover must
replay only the post-checkpoint tail.
"""

from repro.fleet import Fleet, TrafficSpec
from repro.replication.config import ReplicationConfig

#: Replay-budget slack on top of the retained-log high-water mark
#: (mirrors the chained-conform sweep's allowance for the final
#: partial emission window plus crash-epoch records).
REPLAY_SLACK = 32


def _final_primary_metrics(group):
    return group.reports[-1].primary_metrics


def test_long_run_retained_log_is_flat_in_traffic_volume():
    """Triple the traffic; the retained-log high-water mark must not
    move, while total shipped records (the unbounded baseline's replay
    cost) grows with the run."""
    marks, sent = [], []
    for n_requests in (100, 300):
        fleet = Fleet(2, config=ReplicationConfig(checkpoint_interval=4))
        metrics = fleet.serve_open_loop(
            TrafficSpec(n_requests=n_requests, seed=11))
        assert metrics.exactly_once
        for group in fleet.groups:
            pm = _final_primary_metrics(group)
            assert group.reports[-1].steady_checkpoints > 0
            assert pm.records_truncated > 0
            marks.append(pm.retained_records_max)
            sent.append(pm.records_sent)
    # Bounded: every shard's high-water mark is a small constant ...
    assert max(marks) <= min(marks) + REPLAY_SLACK
    assert max(marks) < min(sent) // 4
    # ... while the would-be replay cost grew with the traffic.
    assert min(sent[2:]) > max(sent[:2]) * 2


def test_long_run_snapshot_count_is_bounded():
    """Steady emission re-arms the recovery basis in place: hundreds of
    checkpoints adopted, but only k retained snapshots at any time."""
    fleet = Fleet(2, config=ReplicationConfig(checkpoint_interval=4,
                                              k_backups=2))
    metrics = fleet.serve_open_loop(TrafficSpec(n_requests=200, seed=3))
    assert metrics.exactly_once
    for group in fleet.groups:
        assert group.reports[-1].steady_checkpoints > 20
        assert len(group._backup_bases) == 2


def test_no_interval_means_no_steady_emission():
    fleet = Fleet(2, config=ReplicationConfig())
    metrics = fleet.serve_open_loop(TrafficSpec(n_requests=100, seed=11))
    assert metrics.exactly_once
    for group in fleet.groups:
        assert group.reports[-1].steady_checkpoints == 0
        assert _final_primary_metrics(group).deltas_shipped == 0


def test_mid_load_failover_replays_only_the_tail():
    """A shard primary fail-stops under sustained load: the promoted
    backup restores the last adopted checkpoint and replays a tail no
    larger than the retained-log budget; the fleet stays exactly-once
    and the other shards never notice."""
    crash_shard = 1
    fleet = Fleet(3,
                  config=ReplicationConfig(checkpoint_interval=4),
                  crash_schedule_for=(
                      lambda s: {0: 60} if s == crash_shard else None
                  ))
    metrics = fleet.serve_open_loop(
        TrafficSpec(qps=400.0, n_requests=400, n_clients=8))

    assert metrics.requests_offered == 400
    assert metrics.responses_committed == 400
    assert metrics.exactly_once
    assert metrics.failovers_absorbed == 1

    hit = fleet.groups[crash_shard]
    crashed = hit.reports[0]
    assert crashed.outcome == "crashed"
    assert crashed.steady_checkpoints > 0
    # The recovery that promoted the backup is recorded on the
    # generation it produced.
    rm = hit.reports[1].recovery_metrics
    assert rm is not None
    assert rm.checkpoints_restored == 1
    assert (rm.recovery_tail_records
            <= crashed.primary_metrics.retained_records_max + REPLAY_SLACK)
    # The completing generation kept checkpointing after the failover.
    assert hit.reports[-1].steady_checkpoints > 0
    for shard, group in enumerate(fleet.groups):
        if shard != crash_shard:
            assert len(group.reports) == 1


def test_chained_mid_load_failovers_stay_bounded():
    """Two successive crashes on one shard: each recovery replays only
    its generation's tail, and the re-armed generation resumes steady
    emission from the freshly transferred basis."""
    crash_shard = 0
    fleet = Fleet(2,
                  config=ReplicationConfig(checkpoint_interval=3,
                                           max_failures=4),
                  crash_schedule_for=(
                      lambda s: {0: 40, 1: 40} if s == crash_shard else None
                  ))
    metrics = fleet.serve_open_loop(TrafficSpec(n_requests=250, seed=21))
    assert metrics.exactly_once
    assert metrics.failovers_absorbed == 2
    hit = fleet.groups[crash_shard]
    assert len(hit.reports) == 3
    for crashed, successor in zip(hit.reports, hit.reports[1:]):
        assert crashed.outcome == "crashed"
        rm = successor.recovery_metrics
        assert rm is not None
        assert rm.checkpoints_restored == 1
        assert (rm.recovery_tail_records
                <= crashed.primary_metrics.retained_records_max
                + REPLAY_SLACK)

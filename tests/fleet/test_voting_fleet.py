"""Voting fleet under chaos: quorum shards, partitions, demotion.

Every shard is an n-member quorum-voting group instead of a
primary-backup pair.  The properties under test:

* a steady voting fleet serves exactly-once, with every response held
  for an f+1 quorum certificate before release;
* a seeded proposer liar on one shard is outvoted, deposed, and
  re-armed mid-load — the other shards never notice;
* a member partitioned from the delivered log is *suspected* (silence)
  and absolved at the heal, never convicted — suspicion is provably
  distinct from being outvoted on evidence;
* a confirmed engine-correlated divergence anywhere demotes the whole
  fleet to the step engine at each shard's next safe-point, with zero
  lost or duplicated responses (graceful degradation).
"""

import pytest

from repro.errors import ReplicationError
from repro.fleet import Fleet, TrafficSpec
from repro.replication.config import ReplicationConfig
from repro.replication.transport import (
    ChaosTransport,
    FaultProfile,
    LinkOutage,
    MemberPartition,
)


def _config(**overrides):
    overrides.setdefault("strategy", "thread_sched")
    return ReplicationConfig(voting=True, **overrides)


def _traffic(n_requests, seed=20030622):
    return TrafficSpec(qps=400.0, n_requests=n_requests, n_clients=4,
                       keyspace=32, seed=seed)


# ======================================================================
# Construction rules
# ======================================================================
def test_voting_fleet_rejects_crash_schedules():
    with pytest.raises(ReplicationError):
        Fleet(2, config=_config(),
              crash_schedule_for=lambda s: {0: 40} if s == 0 else None)


def test_lie_shard_must_be_in_range():
    with pytest.raises(ReplicationError):
        Fleet(2, config=_config(lie_at=("output", 3)), lie_shard=5)


# ======================================================================
# Steady state
# ======================================================================
def test_steady_voting_fleet_serves_exactly_once():
    fleet = Fleet(2, config=_config())
    metrics = fleet.serve_open_loop(_traffic(40))
    assert metrics.exactly_once
    assert metrics.responses_committed == 40
    # Every committed response was gated on a quorum certificate.
    assert metrics.outputs_gated >= metrics.responses_committed
    assert metrics.quorum_certs > 0
    assert metrics.votes_cast >= 3 * metrics.quorum_certs // 2
    assert metrics.members_quarantined == 0
    assert metrics.degraded_to == ""
    for sm in metrics.per_shard:
        assert sm.engine == "slice"      # nobody demoted anything


# ======================================================================
# A proposer liar on one shard mid-load
# ======================================================================
def test_proposer_liar_is_convicted_on_its_shard_only():
    lie_shard = 1
    fleet = Fleet(3, config=_config(lie_at=("output", 5)),
                  lie_shard=lie_shard)
    metrics = fleet.serve_open_loop(_traffic(60))
    assert metrics.exactly_once
    assert metrics.responses_committed == 60
    liar = metrics.per_shard[lie_shard]
    assert liar.members_quarantined == 1
    assert liar.members_rearmed == 1
    assert liar.failovers_absorbed == 1   # deposition = one failover
    group = fleet.groups[lie_shard]
    assert [(i.member, i.role) for i in group.incidents] == \
        [(0, "proposer")]
    for shard, sm in enumerate(metrics.per_shard):
        if shard != lie_shard:
            assert sm.members_quarantined == 0
            assert sm.failovers_absorbed == 0


def test_lying_follower_quarantined_without_deposition():
    fleet = Fleet(2, config=_config(lie_at=("output", 5), lie_member=2),
                  lie_shard=0)
    metrics = fleet.serve_open_loop(_traffic(40))
    assert metrics.exactly_once
    sm = metrics.per_shard[0]
    assert sm.members_quarantined == 1
    assert sm.failovers_absorbed == 0     # follower conviction: no failover
    assert [i.member for i in fleet.groups[0].incidents] == [2]


# ======================================================================
# Partition != guilt
# ======================================================================
def test_partitioned_member_is_suspected_then_absolved_on_heal():
    """Member 1 of shard 0 loses the delivered log for a window; it is
    suspected from the silence and absolved at the heal — never
    convicted, because silence is not evidence."""
    chaos = ChaosTransport(
        FaultProfile(latency=2.0), seed=61,
        member_partitions=(MemberPartition(1, 30.0, 120.0, "records"),))
    fleet = Fleet(3, config=_config(),
                  transport_for=lambda s: chaos if s == 0 else None)
    metrics = fleet.serve_open_loop(_traffic(80))
    assert metrics.exactly_once
    assert metrics.responses_committed == 80
    sm = metrics.per_shard[0]
    assert sm.members_suspected >= 1
    assert sm.suspicions_cleared >= 1
    assert sm.members_quarantined == 0    # absolved, not convicted
    assert all(slot.state == "healthy" for slot in fleet.groups[0].slots)


def test_asymmetric_outage_and_partition_heal_cleanly():
    """The rev outage cuts acks only (the case fail-stop cannot model)
    while a member partition rides the same link; both heal with the
    fleet still exactly-once and nobody convicted."""
    chaos = ChaosTransport(
        seed=62,
        outages=(LinkOutage(200.0, 600.0, "rev"),),
        member_partitions=(MemberPartition(1, 30.0, 120.0, "records"),))
    fleet = Fleet(3, config=_config(),
                  transport_for=lambda s: chaos if s == 0 else None)
    metrics = fleet.serve_open_loop(_traffic(80))
    assert metrics.exactly_once
    sm = metrics.per_shard[0]
    assert sm.members_suspected >= 1 and sm.suspicions_cleared >= 1
    assert sm.members_quarantined == 0
    transport = fleet._shard_transports[0]
    assert transport.chaos.acks_cut > 0   # the outage really bit


# ======================================================================
# Graceful degradation
# ======================================================================
def test_engine_divergence_demotes_the_whole_fleet():
    """One shard's MVEE guard rules an engine-correlated divergence
    (the off-engine member outvoted on an output); the controller
    demotes every shard to step at its next safe-point and the fleet
    keeps serving."""
    fleet = Fleet(2, config=_config(variants="step+slice",
                                    lie_at=("output", 5), lie_member=1),
                  lie_shard=0)
    metrics = fleet.serve_open_loop(_traffic(60))
    assert metrics.exactly_once
    assert metrics.responses_committed == 60
    assert metrics.variant_divergences >= 1
    assert metrics.degraded_to == "step"
    assert metrics.engine_demotions == 2  # both shards, not just the alarm's
    assert fleet.degradation.demoted
    for shard, sm in enumerate(metrics.per_shard):
        assert sm.engine == "step"
        group = fleet.groups[shard]
        assert group.base_config.engine == "step"
        assert all(slot.engine == "step" for slot in group.slots)
        assert group.demotions and group.demotions[-1][1] == "step"


# ======================================================================
# The acceptance scenario: liar + chaos + demotion, one run
# ======================================================================
def test_voting_fleet_acceptance_under_chaos():
    """Three voting shards under open-loop load, all at once: shard 1
    carries a lying proposer, shard 0 rides a chaos link (asymmetric
    ack outage + member partition), and shard 2's step-engine member is
    seeded to diverge — the fleet convicts exactly the liars, absolves
    the partitioned member at the heal, demotes everyone to step, and
    still answers every request exactly once."""
    from repro.replication.voting import CorruptionInjector, LieSpec

    chaos = ChaosTransport(
        seed=63,
        outages=(LinkOutage(200.0, 600.0, "rev"),),
        member_partitions=(MemberPartition(1, 30.0, 120.0, "records"),))
    fleet = Fleet(3,
                  config=_config(variants="step+slice",
                                 lie_at=("output", 5)),
                  lie_shard=1,
                  transport_for=lambda s: chaos if s == 0 else None)
    # A second, independent fault domain: shard 2's off-engine member
    # lies on an output ordinal, which the MVEE guard must rule as
    # engine-correlated (its engine is outside the certifying
    # majority's).  Seeded directly — the config's lie seeding is
    # deliberately single-shard.
    fleet.groups[2].injector = CorruptionInjector(
        [LieSpec("output", 8, -1, 1)])

    metrics = fleet.serve_open_loop(_traffic(90))

    # Exactly-once survived all three fault domains at once.
    assert metrics.exactly_once
    assert metrics.responses_committed == 90

    # Shard 1: the proposer liar was convicted (and only it).
    liar = metrics.per_shard[1]
    assert liar.members_quarantined == 1 and liar.members_rearmed == 1
    assert [(i.member, i.role) for i in fleet.groups[1].incidents] == \
        [(0, "proposer")]

    # Shard 0: the partitioned member was absolved at the heal.
    chaotic = metrics.per_shard[0]
    assert chaotic.members_suspected >= 1
    assert chaotic.suspicions_cleared >= 1
    assert chaotic.members_quarantined == 0

    # Shard 2's divergence demoted the *whole* fleet to step.
    assert metrics.variant_divergences >= 1
    assert metrics.degraded_to == "step"
    assert metrics.engine_demotions == 3
    for group in fleet.groups:
        assert group.base_config.engine == "step"
        assert all(slot.engine == "step" for slot in group.slots)

"""Side-effect handlers: log/receive/restore/test/confirm."""

import pytest

from repro.env.environment import Environment
from repro.errors import ReplicationError
from repro.replication.records import SideEffectRecord
from repro.replication.sehandlers import (
    ConsoleSEHandler,
    FileSEHandler,
    SideEffectHandler,
    SideEffectManager,
)
from repro.runtime.natives import NativeOutcome
from repro.runtime.stdlib import default_natives


def _spec(sig):
    return default_natives().lookup(sig)


def test_file_handler_logs_open_and_writes():
    env = Environment()
    session = env.attach("p")
    handler = FileSEHandler()
    fd = session.open("f.txt", "w")
    payload = handler.log(session, _spec("Files.open/2"), None,
                          ["f.txt", "w"], NativeOutcome(value=fd))
    assert payload == {"op": "open", "fd": fd, "path": "f.txt",
                       "mode": "w", "offset": 0}
    session.handle(fd).write("hello")
    payload = handler.log(session, _spec("Files.write/2"), None,
                          [fd, "hello"], NativeOutcome())
    assert payload == {"op": "pos", "fd": fd, "offset": 5}


def test_file_handler_ignores_failed_calls():
    env = Environment()
    session = env.attach("p")
    handler = FileSEHandler()
    outcome = NativeOutcome(exception=("IOException", "nope"))
    assert handler.log(session, _spec("Files.open/2"), None,
                       ["x", "r"], outcome) is None


def test_file_state_compression_and_restore():
    """receive() folds many writes into one offset per fd — the paper's
    compression example — and restore() rebuilds the fd table."""
    handler = FileSEHandler()
    state = {}
    handler.receive(state, {"op": "open", "fd": 3, "path": "f",
                            "mode": "w", "offset": 0})
    for offset in (5, 11, 40):
        handler.receive(state, {"op": "pos", "fd": 3, "offset": offset})
    assert state == {3: {"path": "f", "mode": "w", "offset": 40}}

    env = Environment()
    env.fs.put("f", "x" * 50)
    session = env.attach("backup")
    handler.restore(session, state)
    assert session.handle(3).tell() == 40


def test_file_close_removes_state():
    handler = FileSEHandler()
    state = {}
    handler.receive(state, {"op": "open", "fd": 3, "path": "f",
                            "mode": "w", "offset": 0})
    handler.receive(state, {"op": "close", "fd": 3})
    assert state == {}


def test_file_write_test_detects_completion():
    handler = FileSEHandler()
    env = Environment()
    state = {3: {"path": "f", "mode": "w", "offset": 4}}
    spec = _spec("Files.write/2")

    env.fs.put("f", "abcdWXYZ")        # the write DID land at offset 4
    assert handler.test(env, state, spec, [3, "WXYZ"]) is True

    env.fs.put("f", "abcd")            # the write never happened
    assert handler.test(env, state, spec, [3, "WXYZ"]) is False

    env.fs.put("f", "abcdWX")          # partial? (cannot happen, but safe)
    assert handler.test(env, state, spec, [3, "WXYZ"]) is False


def test_file_write_confirm_advances_offset():
    handler = FileSEHandler()
    env = Environment()
    env.fs.put("f", "abcdWXYZ")
    session = env.attach("b")
    session.restore_fd(3, "f", 4, "w")
    state = {3: {"path": "f", "mode": "w", "offset": 4}}
    handler.confirm(session, state, _spec("Files.write/2"), [3, "WXYZ"])
    assert state[3]["offset"] == 8
    assert session.handle(3).tell() == 8


def test_console_handler_position_tracking():
    handler = ConsoleSEHandler()
    env = Environment()
    session = env.attach("p")
    session.console_write("hello\n")
    payload = handler.log(session, _spec("System.println/1"), None,
                          ["hello"], NativeOutcome())
    assert payload == {"op": "pos", "pos": 6}

    state = {}
    handler.receive(state, payload)
    # Uncertain println("x"): did it land?
    assert handler.test(env, state, _spec("System.println/1"), ["x"]) is False
    env.console.write("x\n")
    assert handler.test(env, state, _spec("System.println/1"), ["x"]) is True


def test_manager_routes_and_restores_once():
    manager = SideEffectManager()
    manager.receive(SideEffectRecord("file", {
        "op": "open", "fd": 3, "path": "f", "mode": "w", "offset": 2,
    }))
    env = Environment()
    env.fs.put("f", "xxxx")
    session = env.attach("b")
    manager.restore(session)
    assert session.handle(3).tell() == 2
    assert manager.restored
    manager.restore(session)  # second call is a no-op


def test_manager_rejects_unknown_and_duplicate_handlers():
    manager = SideEffectManager()
    with pytest.raises(ReplicationError, match="R6"):
        manager.handler("quantum")
    with pytest.raises(ReplicationError, match="twice"):
        manager.add_handler(FileSEHandler())

    class Nameless(SideEffectHandler):
        name = ""

    with pytest.raises(ReplicationError, match="name"):
        manager.add_handler(Nameless())


def test_custom_application_handler_can_be_added():
    class MyHandler(SideEffectHandler):
        name = "myapp"

    manager = SideEffectManager()
    manager.add_handler(MyHandler())
    assert manager.handler("myapp").name == "myapp"

"""Heartbeat failure detector."""

import pytest

from repro.replication.failure import FailureDetector


def test_no_false_positive_while_heartbeats_flow():
    d = FailureDetector(timeout_intervals=2)
    for _ in range(20):
        d.heartbeat()
        assert d.interval() is False
    assert not d.suspected


def test_detects_after_timeout_intervals():
    d = FailureDetector(timeout_intervals=3)
    d.heartbeat()
    assert d.interval() is False   # beat seen
    assert d.interval() is False   # silent 1
    assert d.interval() is False   # silent 2
    assert d.interval() is True    # silent 3 -> suspected
    assert d.suspected


def test_silence_counter_resets_on_heartbeat():
    d = FailureDetector(timeout_intervals=2)
    d.heartbeat()
    d.interval()
    d.interval()          # silent 1
    d.heartbeat()
    assert d.interval() is False  # reset
    assert d.silent_intervals == 0


def test_await_detection_counts_intervals():
    d = FailureDetector(timeout_intervals=4)
    assert d.await_detection() == 4


def test_await_detection_gives_up():
    class Immortal(FailureDetector):
        def interval(self):
            self.heartbeat()
            return super().interval()

    with pytest.raises(RuntimeError):
        Immortal(timeout_intervals=3).await_detection(max_intervals=10)


def test_invalid_timeout():
    with pytest.raises(ValueError):
        FailureDetector(timeout_intervals=0)


# ======================================================================
# reset(): one detector serving successive generations
# ======================================================================
def test_reset_clears_suspicion_and_counters():
    """A replica group reuses one detector across failovers; a promoted
    pair must not inherit the deposed generation's suspicion."""
    d = FailureDetector(timeout_intervals=2)
    assert d.await_detection() == 2
    assert d.suspected
    d.reset()
    assert not d.suspected
    assert d.silent_intervals == 0
    assert d.intervals_observed == 0
    d.heartbeat()
    assert d.interval() is False               # no instant false positive


def test_reset_without_argument_keeps_source():
    beats = {"n": 1}
    d = FailureDetector(timeout_intervals=2, source=lambda: beats["n"])
    assert d.interval() is False
    d.reset()
    beats["n"] += 1
    assert d.interval() is False               # still reading the source
    assert d.observed_heartbeats() == beats["n"]


def test_reset_rebinds_source_to_new_generation():
    old = {"n": 100}
    new = {"n": 0}
    d = FailureDetector(timeout_intervals=2, source=lambda: old["n"])
    d.await_detection()
    d.reset(source=lambda: new["n"])
    assert d.observed_heartbeats() == 0
    new["n"] = 3
    assert d.interval() is False
    # And reset(source=None) drops back to the in-process counter.
    d.reset(source=None)
    d.heartbeat()
    assert d.observed_heartbeats() == 1

"""Heartbeat failure detector."""

import pytest

from repro.replication.failure import FailureDetector


def test_no_false_positive_while_heartbeats_flow():
    d = FailureDetector(timeout_intervals=2)
    for _ in range(20):
        d.heartbeat()
        assert d.interval() is False
    assert not d.suspected


def test_detects_after_timeout_intervals():
    d = FailureDetector(timeout_intervals=3)
    d.heartbeat()
    assert d.interval() is False   # beat seen
    assert d.interval() is False   # silent 1
    assert d.interval() is False   # silent 2
    assert d.interval() is True    # silent 3 -> suspected
    assert d.suspected


def test_silence_counter_resets_on_heartbeat():
    d = FailureDetector(timeout_intervals=2)
    d.heartbeat()
    d.interval()
    d.interval()          # silent 1
    d.heartbeat()
    assert d.interval() is False  # reset
    assert d.silent_intervals == 0


def test_await_detection_counts_intervals():
    d = FailureDetector(timeout_intervals=4)
    assert d.await_detection() == 4


def test_await_detection_gives_up():
    class Immortal(FailureDetector):
        def interval(self):
            self.heartbeat()
            return super().interval()

    with pytest.raises(RuntimeError):
        Immortal(timeout_intervals=3).await_detection(max_intervals=10)


def test_invalid_timeout():
    with pytest.raises(ValueError):
        FailureDetector(timeout_intervals=0)


# ======================================================================
# reset(): one detector serving successive generations
# ======================================================================
def test_reset_clears_suspicion_and_counters():
    """A replica group reuses one detector across failovers; a promoted
    pair must not inherit the deposed generation's suspicion."""
    d = FailureDetector(timeout_intervals=2)
    assert d.await_detection() == 2
    assert d.suspected
    d.reset()
    assert not d.suspected
    assert d.silent_intervals == 0
    assert d.intervals_observed == 0
    d.heartbeat()
    assert d.interval() is False               # no instant false positive


def test_reset_without_argument_keeps_source():
    beats = {"n": 1}
    d = FailureDetector(timeout_intervals=2, source=lambda: beats["n"])
    assert d.interval() is False
    d.reset()
    beats["n"] += 1
    assert d.interval() is False               # still reading the source
    assert d.observed_heartbeats() == beats["n"]


def test_reset_rebinds_source_to_new_generation():
    old = {"n": 100}
    new = {"n": 0}
    d = FailureDetector(timeout_intervals=2, source=lambda: old["n"])
    d.await_detection()
    d.reset(source=lambda: new["n"])
    assert d.observed_heartbeats() == 0
    new["n"] = 3
    assert d.interval() is False
    # And reset(source=None) drops back to the in-process counter.
    d.reset(source=None)
    d.heartbeat()
    assert d.observed_heartbeats() == 1


# ======================================================================
# suspected vs convicted: slow is not faulty
# ======================================================================
def test_suspicion_clears_when_heartbeats_resume():
    """A transient hiccup silences the beats long enough to suspect the
    member; once they resume, it was merely slow — the suspicion clears
    and no permanent state is left behind."""
    d = FailureDetector(timeout_intervals=2)
    d.heartbeat()
    d.interval()
    assert d.await_detection() >= 2            # hiccup -> suspected
    assert d.suspected and not d.convicted
    d.heartbeat()                              # beats resume
    assert d.interval() is False               # recoverable: cleared
    assert not d.suspected
    assert d.suspicions_cleared == 1
    assert d.silent_intervals == 0


def test_absolve_clears_suspicion_out_of_band():
    """A matching digest vote proves the member healthy even while its
    heartbeats lag (the quorum absolves it before the next beat)."""
    d = FailureDetector(timeout_intervals=1)
    assert d.interval() is True
    d.absolve()
    assert not d.suspected
    assert d.suspicions_cleared == 1
    # Absolving an unsuspected member is a no-op, not a double-count.
    d.absolve()
    assert d.suspicions_cleared == 1


def test_conviction_survives_resumed_heartbeats():
    """A liar beats on time: resumed heartbeats must never lift a
    conviction, and absolve() must refuse too."""
    d = FailureDetector(timeout_intervals=2)
    d.convict("outvoted on digest epoch 4")
    assert d.convicted and d.suspected
    for _ in range(5):
        d.heartbeat()
        assert d.interval() is True            # still out of the group
    assert d.convicted
    d.absolve()
    assert d.convicted and d.suspected         # no out-of-band pardon
    assert d.conviction_reason == "outvoted on digest epoch 4"


def test_rearm_lifts_conviction_cleanly():
    """Only the checkpoint-transfer re-arm path lifts a conviction; the
    detector restarts from the current heartbeat watermark so the
    quarantine gap is not counted as silence."""
    d = FailureDetector(timeout_intervals=2)
    for _ in range(4):
        d.heartbeat()
    d.convict("equivocated")
    d.rearm()
    assert not d.convicted and not d.suspected
    assert d.conviction_reason == ""
    assert d.interval() is False               # watermark: no false alarm
    d.heartbeat()
    assert d.interval() is False

"""Heartbeat failure detector."""

import pytest

from repro.replication.failure import FailureDetector


def test_no_false_positive_while_heartbeats_flow():
    d = FailureDetector(timeout_intervals=2)
    for _ in range(20):
        d.heartbeat()
        assert d.interval() is False
    assert not d.suspected


def test_detects_after_timeout_intervals():
    d = FailureDetector(timeout_intervals=3)
    d.heartbeat()
    assert d.interval() is False   # beat seen
    assert d.interval() is False   # silent 1
    assert d.interval() is False   # silent 2
    assert d.interval() is True    # silent 3 -> suspected
    assert d.suspected


def test_silence_counter_resets_on_heartbeat():
    d = FailureDetector(timeout_intervals=2)
    d.heartbeat()
    d.interval()
    d.interval()          # silent 1
    d.heartbeat()
    assert d.interval() is False  # reset
    assert d.silent_intervals == 0


def test_await_detection_counts_intervals():
    d = FailureDetector(timeout_intervals=4)
    assert d.await_detection() == 4


def test_await_detection_gives_up():
    class Immortal(FailureDetector):
        def interval(self):
            self.heartbeat()
            return super().interval()

    with pytest.raises(RuntimeError):
        Immortal(timeout_intervals=3).await_detection(max_intervals=10)


def test_invalid_timeout():
    with pytest.raises(ValueError):
        FailureDetector(timeout_intervals=0)

"""The resumable serving lifecycle and the config-object constructors.

``run()`` is run-to-completion; serving turns the same machines into
request/response servers: the program parks at its ``Server.recv``
safe-point event whenever the request port is empty, and
``serve(request)`` delivers one request, pumps to the next quiescent
point, and returns the output-committed response.  A primary crash
mid-pump is absorbed in place — replay, uncertain-tail resolution,
request-port reconciliation — and serving resumes on the promoted
backup with every response committed exactly once.
"""

import warnings

import pytest

from repro.env.environment import Environment
from repro.errors import ReplicationError
from repro.minijava import compile_program
from repro.replication.config import (
    DEFAULT_BACKUP,
    DEFAULT_PRIMARY,
    ReplicationConfig,
    config_from_kwargs,
)
from repro.replication.machine import ReplicatedJVM
from repro.replication.supervisor import ReplicaGroup

ECHO_SERVER = """
class Main {
    static void main(String[] args) {
        boolean run = true;
        int served = 0;
        while (run) {
            String req = Server.recv("req");
            if (req.startsWith("stop")) {
                run = false;
            } else {
                Server.reply(req, "ok:" + req.length());
                served = served + 1;
            }
        }
        System.println("served " + served);
    }
}
"""


@pytest.fixture(scope="module")
def registry():
    return compile_program(ECHO_SERVER)


# ======================================================================
# ReplicatedJVM: single-failover serving
# ======================================================================
def test_machine_serves_and_completes(registry):
    env = Environment()
    machine = ReplicatedJVM(registry, env=env, config=ReplicationConfig())
    machine.start_serving("Main", port="req")
    assert machine.serving
    for i in range(8):
        assert machine.serve(f"r{i} get {i}") == f"ok:{len(f'r{i} get {i}')}"
    result = machine.stop_serving("stop now")
    assert result.outcome == "primary_completed"
    assert env.responses.count() == 8
    assert env.responses.duplicates == 0
    assert "served 8" in env.console.transcript()


def test_machine_serving_metrics_count_requests(registry):
    machine = ReplicatedJVM(registry, env=Environment(),
                            config=ReplicationConfig())
    machine.start_serving("Main", port="req")
    for i in range(5):
        machine.serve(f"r{i} get {i}")
    machine.stop_serving("stop now")
    metrics = machine.primary_metrics
    assert metrics.requests_ingested == 6      # 5 requests + the stop
    assert metrics.responses_committed == 5    # the stop is not replied


def test_machine_failover_mid_serve_is_exactly_once(registry):
    env = Environment()
    machine = ReplicatedJVM(registry, env=env,
                            config=ReplicationConfig(crash_at=6))
    machine.start_serving("Main", port="req")
    responses = [machine.serve(f"r{i:02d} get {i}") for i in range(12)]
    assert all(r is not None for r in responses)
    result = machine.stop_serving("stop now")
    assert result.failed_over
    assert result.outcome == "failover_completed"
    assert env.responses.count() == 12
    assert env.responses.duplicates == 0
    assert "served 12" in env.console.transcript()


def test_machine_serve_requires_start(registry):
    machine = ReplicatedJVM(registry, env=Environment(),
                            config=ReplicationConfig())
    with pytest.raises(ReplicationError):
        machine.serve("r0 get 0")


# ======================================================================
# ReplicaGroup: serving across repeated failovers
# ======================================================================
def test_group_serves_through_chained_failovers(registry):
    env = Environment()
    group = ReplicaGroup(registry, env=env, config=ReplicationConfig(
        crash_schedule={0: 20, 1: 30, 2: 55}, max_failures=8,
    ))
    group.start_serving("Main", port="req")
    for i in range(30):
        assert group.serve(f"r{i:03d} get {i}") is not None
    result = group.stop_serving("stop now")
    assert result.failures_survived == 3
    assert [r.outcome for r in result.generations][-1] == "completed"
    assert env.responses.count() == 30
    assert env.responses.duplicates == 0
    assert "served 30" in env.console.transcript()


def test_group_requeues_unanswered_requests_on_failover(registry):
    """Requests consumed from the port but not yet answered when the
    primary dies are requeued during reconciliation, never dropped."""
    env = Environment()
    group = ReplicaGroup(registry, env=env, config=ReplicationConfig(
        crash_schedule={0: 25},
    ))
    group.start_serving("Main", port="req")
    for i in range(20):
        assert group.serve(f"r{i:03d} get {i}") is not None
    group.stop_serving("stop now")
    requeued = sum(
        r.recovery_metrics.requests_requeued
        for r in group.reports if r.recovery_metrics is not None
    )
    assert group.failures_survived == 1
    assert requeued >= 0          # reconciliation ran (counter exists)
    assert env.responses.count() == 20
    assert env.responses.duplicates == 0


# ======================================================================
# ReplicationConfig and the keyword-compat shim
# ======================================================================
def test_config_merged_overrides_only_named_fields():
    base = ReplicationConfig(strategy="thread_sched", batch_records=7)
    derived = base.merged(crash_at=3)
    assert derived.strategy == "thread_sched"
    assert derived.batch_records == 7
    assert derived.crash_at == 3
    assert base.crash_at is None


def test_config_merged_rejects_unknown_fields():
    with pytest.raises(TypeError):
        ReplicationConfig().merged(bogus=1)


def test_legacy_kwargs_warn_and_map_onto_config(registry):
    with pytest.warns(DeprecationWarning, match="ReplicatedJVM"):
        machine = ReplicatedJVM(registry, env=Environment(),
                                strategy="thread_sched", crash_at=4)
    assert machine.config.strategy == "thread_sched"
    assert machine.config.crash_at == 4


def test_group_legacy_kwargs_warn(registry):
    with pytest.warns(DeprecationWarning, match="ReplicaGroup"):
        group = ReplicaGroup(registry, env=Environment(),
                             crash_schedule={0: 5})
    assert group.config.crash_schedule == {0: 5}


def test_config_object_constructors_do_not_warn(registry):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        ReplicatedJVM(registry, env=Environment(),
                      config=ReplicationConfig(strategy="lock_sync"))
        ReplicaGroup(registry, env=Environment(),
                     config=ReplicationConfig())


def test_config_from_kwargs_folds_legacy_keywords_into_config():
    base = ReplicationConfig(batch_records=5)
    with pytest.warns(DeprecationWarning):
        merged = config_from_kwargs(base, {"crash_at": 9},
                                    owner="ReplicatedJVM")
    assert merged.batch_records == 5
    assert merged.crash_at == 9
    with pytest.raises(TypeError):
        config_from_kwargs(None, {"bogus": 1}, owner="ReplicatedJVM")


def test_default_replica_settings_are_distinct():
    assert DEFAULT_PRIMARY.scheduler_seed != DEFAULT_BACKUP.scheduler_seed

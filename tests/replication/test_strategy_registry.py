"""Strategy registry: plug-in coordination strategies without core edits.

The headline test registers a complete third-party strategy — with its
own wire-level record type — from test code only, and runs it through
``ReplicatedJVM`` failover.  Nothing in ``machine.py`` knows about it.
"""

from dataclasses import dataclass

import pytest

from repro.env.environment import Environment
from repro.errors import ReplicationError
from repro.minijava import compile_program
from repro.replication import (
    AdmissionBackupDriver,
    AdmissionPrimaryDriver,
    CoordinationStrategy,
    FIRST_CUSTOM_KIND,
    LockSyncStrategy,
    register_log_record,
    register_record_kind,
    register_strategy,
    resolve_strategy,
    strategy_names,
)
from repro.replication.lock_sync import BackupLockSync, PrimaryLockSync
from repro.replication.machine import ReplicatedJVM, parse_log
from repro.replication.records import encode
from repro.replication.wire import Reader, Writer

COUNTER_PROGRAM = """
class Counter {
    int n;
    synchronized void add(int d) { n = n + d; }
    synchronized int get() { return n; }
}
class Worker extends Thread {
    Counter c; int d;
    Worker(Counter c, int d) { this.c = c; this.d = d; }
    void run() { for (int i = 0; i < 40; i++) { c.add(d); } }
}
class Main {
    static void main(String[] args) {
        Counter c = new Counter();
        Worker a = new Worker(c, 1); Worker b = new Worker(c, 100);
        a.start(); b.start(); a.join(); b.join();
        System.println("total=" + c.get());
    }
}
"""


# ======================================================================
# A complete plug-in strategy, defined entirely in test code
# ======================================================================
_EPOCH_KIND = FIRST_CUSTOM_KIND + 3


@dataclass(frozen=True)
class EpochRecord:
    """Plug-in record: a primary-side epoch stamp shipped in-log."""

    epoch: int

    def write(self, w: Writer) -> None:
        w.uvarint(_EPOCH_KIND).uvarint(self.epoch)

    @staticmethod
    def read(r: Reader) -> "EpochRecord":
        return EpochRecord(r.uvarint())


register_record_kind(_EPOCH_KIND, EpochRecord.read)
register_log_record(EpochRecord)    # default rule: parsed.extra bucket


class _EpochPrimaryDriver(AdmissionPrimaryDriver):
    def __init__(self, shipper, metrics):
        super().__init__(PrimaryLockSync(shipper, metrics))
        self._shipper = shipper

    def install(self, jvm) -> None:
        super().install(jvm)
        self._shipper.log(EpochRecord(1))


class EpochLockSyncStrategy(CoordinationStrategy):
    """Lock-sync semantics plus an epoch stamp at the head of the log —
    the minimal strategy that needs its own record type."""

    name = "epoch_lock_sync"

    def __init__(self):
        self.backup_saw_epochs = []

    def make_primary(self, shipper, metrics, settings, config):
        return _EpochPrimaryDriver(shipper, metrics)

    def make_backup(self, parsed_log, metrics, settings, config):
        epochs = parsed_log.extra.get("EpochRecord", [])
        self.backup_saw_epochs.append([e.epoch for e in epochs])
        admission = BackupLockSync(
            parsed_log.id_maps, parsed_log.lock_acqs, metrics
        )
        return AdmissionBackupDriver(
            admission,
            extend=lambda p: admission.extend(p.id_maps, p.lock_acqs),
        )


register_strategy(EpochLockSyncStrategy())


def test_plugin_strategy_runs_failover_end_to_end():
    """A strategy registered from test code — custom record type and
    all — completes failover through the unmodified machine."""
    env0 = Environment()
    reference = ReplicatedJVM(compile_program(COUNTER_PROGRAM), env=env0,
                              strategy="epoch_lock_sync")
    result = reference.run("Main")
    assert result.outcome == "primary_completed"
    assert env0.console.transcript() == "total=4040\n"
    events = reference.shipper.injector.events

    strategy = resolve_strategy("epoch_lock_sync")
    step = max(1, events // 20)
    for crash_at in range(2, events + 1, step):
        clone = reference.clone(crash_at=crash_at)
        outcome = clone.run("Main")
        assert outcome.failed_over, crash_at
        assert outcome.final_result.ok, crash_at
        assert clone.env.console.transcript() == "total=4040\n", crash_at
    # Every backup build after the first flush saw the epoch stamp.
    assert any(epochs == [1] for epochs in strategy.backup_saw_epochs)


def test_custom_record_round_trips_through_parse_log():
    parsed = parse_log([encode(EpochRecord(7))])
    assert parsed.total == 1
    assert parsed.extra["EpochRecord"] == [EpochRecord(7)]


def test_reserved_record_kinds_are_protected():
    with pytest.raises(ReplicationError, match="reserved"):
        register_record_kind(3, EpochRecord.read)
    with pytest.raises(ReplicationError, match="already registered"):
        register_record_kind(_EPOCH_KIND, EpochRecord.read)


# ======================================================================
# Registry mechanics
# ======================================================================
def test_builtin_names_resolve():
    assert {"lock_sync", "thread_sched", "lock_intervals"} <= set(
        strategy_names()
    )
    assert isinstance(resolve_strategy("lock_sync"), LockSyncStrategy)


def test_strategy_objects_pass_straight_through():
    strategy = LockSyncStrategy()
    machine = ReplicatedJVM(compile_program(COUNTER_PROGRAM),
                            strategy=strategy)
    assert machine.strategy == "lock_sync"
    assert resolve_strategy(strategy) is strategy


def test_unknown_strategy_lists_registered_names():
    with pytest.raises(ReplicationError, match="unknown strategy"):
        resolve_strategy("quantum")
    with pytest.raises(ReplicationError, match="lock_sync"):
        resolve_strategy("quantum")


def test_duplicate_registration_rejected_unless_replaced():
    with pytest.raises(ReplicationError, match="already registered"):
        register_strategy(LockSyncStrategy())
    register_strategy(LockSyncStrategy(), replace=True)   # explicit wins


def test_nameless_strategy_rejected():
    with pytest.raises(ReplicationError, match="no name"):
        register_strategy(CoordinationStrategy())

"""Log shipping, output commit, and crash injection."""

import pytest

from repro.env.channel import Channel
from repro.errors import PrimaryCrashed
from repro.replication.commit import CrashInjector, LogShipper
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import IdMap, decode_record


def _shipper(batch=10, crash_at=None):
    channel = Channel(batch_records=batch)
    metrics = ReplicationMetrics()
    shipper = LogShipper(channel, metrics, CrashInjector(crash_at))
    return channel, metrics, shipper


def test_records_reach_backup_after_flush():
    channel, metrics, shipper = _shipper()
    shipper.log(IdMap(1, (0,), 1))
    assert channel.delivered == []
    channel.flush()
    assert decode_record(channel.delivered[0]) == IdMap(1, (0,), 1)
    assert metrics.messages_sent == 1
    assert metrics.records_sent == 1
    assert metrics.bytes_sent > 0


def test_output_commit_flushes_and_waits():
    channel, metrics, shipper = _shipper(batch=100)
    shipper.log(IdMap(1, (0,), 1))
    shipper.output_commit()
    assert len(channel.delivered) == 1
    assert metrics.output_commits == 1
    assert metrics.ack_waits == 1


def test_batch_auto_flush_counts_messages():
    channel, metrics, shipper = _shipper(batch=3)
    for i in range(7):
        shipper.log(IdMap(i, (0,), i))
    assert metrics.messages_sent == 2          # two full batches
    assert channel.pending_records == 1


def test_crash_injector_fires_at_exact_event():
    channel, metrics, shipper = _shipper(crash_at=3)
    shipper.log(IdMap(1, (0,), 1))
    shipper.log(IdMap(2, (0,), 2))
    with pytest.raises(PrimaryCrashed):
        shipper.log(IdMap(3, (0,), 3))
    assert shipper.injector.fired
    assert shipper.injector.events == 3
    assert shipper.injector.trace == ["log:IdMap"] * 3


def test_crash_injector_disabled_by_default():
    injector = CrashInjector()
    for i in range(100):
        injector.step("x")
    assert not injector.fired


def test_commit_is_a_crash_event():
    channel, metrics, shipper = _shipper(crash_at=2)
    shipper.log(IdMap(1, (0,), 1))
    with pytest.raises(PrimaryCrashed):
        shipper.output_commit()
    # The flush never happened: the record is lost with the primary.
    channel.crash_primary()
    assert channel.backup_log() == []


# ======================================================================
# Atomic log units (marker + side-effect record)
# ======================================================================
def test_atomic_section_defers_auto_flush():
    channel, metrics, shipper = _shipper(batch=1)
    with shipper.atomic():
        shipper.log(IdMap(1, (0,), 1))
        assert channel.delivered == []         # batch=1 would have flushed
        shipper.log(IdMap(2, (0,), 2))
        assert channel.delivered == []
    # Closing the section flushes the whole unit as one message.
    assert len(channel.delivered) == 2
    assert metrics.messages_sent == 1


def test_atomic_unit_is_lost_together_on_crash():
    """A crash inside an atomic section must not push out the unit's
    earlier records during the unwind — marker and side-effect record
    are delivered together or lost together."""
    channel, metrics, shipper = _shipper(batch=1, crash_at=2)
    shipper.log(IdMap(1, (0,), 1))             # flushes (batch=1)
    with pytest.raises(PrimaryCrashed):
        with shipper.atomic():
            shipper.log(IdMap(2, (0,), 2))     # buffered, held
            shipper.log(IdMap(3, (0,), 3))     # injector fires here
    channel.crash_primary()
    assert len(channel.backup_log()) == 1      # only the pre-unit record


def test_atomic_sections_nest():
    channel, metrics, shipper = _shipper(batch=1)
    with shipper.atomic():
        shipper.log(IdMap(1, (0,), 1))
        with shipper.atomic():
            shipper.log(IdMap(2, (0,), 2))
        assert channel.delivered == []         # inner close keeps holding
    assert len(channel.delivered) == 2


def test_atomic_noop_with_large_batch():
    channel, metrics, shipper = _shipper(batch=100)
    with shipper.atomic():
        shipper.log(IdMap(1, (0,), 1))
    assert channel.delivered == []             # batch not full: no flush
    assert channel.pending_records == 1


# ======================================================================
# Batched per-flush encoding
# ======================================================================
def test_log_buffers_objects_and_encodes_at_flush():
    """The hot log() call must not serialize: records sit in the buffer
    as objects and the whole batch is encoded once, at flush."""
    channel, metrics, shipper = _shipper(batch=100)
    shipper.log(IdMap(1, (0,), 1))
    shipper.log(IdMap(2, (0,), 2))
    assert metrics.records_batch_encoded == 0
    assert all(not isinstance(r, bytes) for r in channel._buffer)
    channel.flush()
    assert metrics.records_batch_encoded == 2
    assert [decode_record(p) for p in channel.delivered] == \
        [IdMap(1, (0,), 1), IdMap(2, (0,), 2)]


@pytest.mark.parametrize("epoch", [None, 0, 5, 300])
def test_batched_encoding_is_byte_identical(epoch):
    """Per-flush batch encoding produces exactly the bytes the old
    per-record path produced: ``encode(EpochRecord(epoch, encode(r)))``
    for each record, in order."""
    from repro.replication.commit import CrashInjector, LogShipper
    from repro.replication.records import (
        EpochRecord, LockAcqRecord, OutputIntentRecord, encode,
    )

    records = [
        IdMap(1, (0,), 1),
        LockAcqRecord((1,), 7, 3, 2),
        OutputIntentRecord((1,), 2, "Server.reply"),
    ]
    channel = Channel(batch_records=100)
    shipper = LogShipper(channel, ReplicationMetrics(), CrashInjector(),
                         epoch=epoch)
    for record in records:
        shipper.log(record)
    channel.flush()

    if epoch is None:
        reference = [encode(r) for r in records]
    else:
        reference = [encode(EpochRecord(epoch, encode(r)))
                     for r in records]
    assert channel.delivered == reference

"""State digests: computation, wire round-trip, lockstep verification,
divergence detection on a corrupted replay, and the incremental
(dirty-set) digester agreeing with the full walk at every epoch."""

import pytest

from repro.env.environment import Environment
from repro.errors import DivergenceError, ReplicationError
from repro.minijava import compile_program
from repro.replication.digest import (
    COMPONENTS,
    DigestRecord,
    DigestVerifier,
    IncrementalStateDigest,
    StateDigest,
    compute_state_digest,
)
from repro.replication.machine import ReplicatedJVM, parse_log
from repro.replication.records import decode_record, encode
from repro.runtime.jvm import RunHooks
from repro.runtime.values import JObject

COUNTER = """
class Counter {
    int value;
    synchronized void inc() { this.value = this.value + 1; }
    synchronized int get() { return this.value; }
}
class Worker extends Thread {
    Counter counter;
    int reps;
    Worker(Counter c, int reps) { this.counter = c; this.reps = reps; }
    void run() {
        int i = 0;
        while (i < this.reps) { this.counter.inc(); i = i + 1; }
    }
}
class Main {
    static void main() {
        Counter c = new Counter();
        Worker a = new Worker(c, 6);
        Worker b = new Worker(c, 6);
        a.start();
        b.start();
        a.join();
        b.join();
        System.println("total=" + c.get());
    }
}
"""


def _machine(strategy="thread_sched", **kw):
    kw.setdefault("digest_interval", 1)
    return ReplicatedJVM(compile_program(COUNTER), env=Environment(),
                         strategy=strategy, **kw)


# ======================================================================
# StateDigest / compute_state_digest
# ======================================================================
def test_digest_components_and_diff():
    machine = _machine()
    machine.run("Main")
    digest = compute_state_digest(machine.primary_jvm, machine.env)
    assert tuple(name for name, _ in digest.components) == COMPONENTS
    assert digest.diff(digest) == []
    tweaked = StateDigest(tuple(
        (name, value ^ 1 if name == "heap" else value)
        for name, value in digest.components
    ))
    assert digest.diff(tweaked) == ["heap"]


def test_digest_is_oid_insensitive():
    """Two runs with different allocation histories but equal state
    digest identically — references are named by visit order."""
    source = """
    class Box { int v; }
    class Main {
        static Box keep;
        static void main() {
            %s
            Box b = new Box();
            b.v = 42;
            Main.keep = b;
        }
    }
    """
    digests = []
    for garbage in ("", "Box g1 = new Box(); Box g2 = new Box();"):
        machine = ReplicatedJVM(compile_program(source % garbage),
                                env=Environment())
        machine.run("Main")
        digests.append(compute_state_digest(machine.primary_jvm))
    assert digests[0].diff(digests[1], names=("heap",)) == []


# ======================================================================
# Incremental digester vs full walk
# ======================================================================
class _IncrementalComparer(RunHooks):
    """At every slice end, the incremental digester must agree with a
    fresh full walk — over live, still-mutating state."""

    def __init__(self, env):
        self.env = env
        self.digester = None
        self.compared = 0

    def on_slice_end(self, jvm, thread, reason):
        if self.digester is None:
            self.digester = IncrementalStateDigest(jvm, self.env)
        incremental = self.digester.compute()
        full = compute_state_digest(jvm, self.env)
        assert incremental.components == full.components, \
            incremental.diff(full)
        self.compared += 1


def test_incremental_digest_matches_full_walk_every_slice():
    from repro.runtime.jvm import JVM, JVMConfig
    from repro.runtime.stdlib import default_natives

    env = Environment()
    jvm = JVM(compile_program(COUNTER), default_natives(),
              env.attach("inc"),
              JVMConfig(quantum_base=20, quantum_jitter=8))
    comparer = _IncrementalComparer(env)
    jvm.run_hooks = comparer
    result = jvm.run("Main")
    assert result.ok, result.uncaught
    assert comparer.compared > 3
    # Steady state actually reuses cached hashes — the point of the
    # dirty-set walk — while still re-hashing what mutated.
    assert comparer.digester.items_reused > 0
    assert comparer.digester.items_hashed > 0


def test_incremental_digest_sees_quiescence_and_mutation():
    machine = _machine()
    machine.run("Main")
    jvm = machine.primary_jvm
    digester = IncrementalStateDigest(jvm, machine.env)
    first = digester.compute()
    hashed_cold = digester.items_hashed

    # Nothing mutated: the second pass reuses every object hash and
    # reports the identical digest.
    second = digester.compute()
    assert second.components == first.components
    assert digester.items_hashed == hashed_cold

    # A field write stamped with the heap era (as every interpreter
    # mutation site stamps it) re-hashes that object and changes the
    # heap component.
    counter = next(
        obj for obj in jvm.heap.objects
        if getattr(obj, "class_name", None) == "Counter"
    )
    counter.fields["value"] += 1
    counter.mut_era = jvm.heap.era
    third = digester.compute()
    assert third.diff(first) == ["heap"]
    assert third.components == \
        compute_state_digest(jvm, machine.env).components


# ======================================================================
# DigestRecord on the wire
# ======================================================================
def test_digest_record_round_trips():
    record = DigestRecord(7, True, (("heap", (1 << 127) + 12345),
                                    ("env", 0)))
    decoded = decode_record(encode(record))
    assert decoded == record
    assert decoded.digest.as_dict()["heap"] == (1 << 127) + 12345


def test_digest_kind_is_core_reserved():
    from repro.replication.records import KIND_DIGEST, register_record_kind
    with pytest.raises(ReplicationError, match="already registered"):
        register_record_kind(KIND_DIGEST, DigestRecord.read, core=True)


def test_parse_log_buckets_digest_records():
    record = DigestRecord(1, False, (("heap", 5),))
    parsed = parse_log([encode(record)])
    assert parsed.digests == [record]


# ======================================================================
# Primary emission + backup verification
# ======================================================================
def test_primary_emits_periodic_and_final_digests():
    machine = _machine("thread_sched", digest_interval=1)
    machine.run("Main")
    assert machine.primary_metrics.digest_records >= 2
    assert machine.primary_metrics.digest_bytes > 0
    parsed = parse_log(machine.channel.backup_log())
    periodic = [r for r in parsed.digests if not r.final]
    finals = [r for r in parsed.digests if r.final]
    assert len(periodic) == machine.primary_metrics.schedule_records
    assert len(finals) == 1


def test_lock_sync_emits_final_digest_only():
    """Without a replicated interleaving, mid-run global states are not
    comparable: lock_sync ships exactly one end-of-run digest."""
    machine = _machine("lock_sync", digest_interval=1)
    machine.run("Main")
    parsed = parse_log(machine.channel.backup_log())
    assert [r.final for r in parsed.digests] == [True]


def test_replay_verifies_every_epoch():
    machine = _machine("thread_sched", digest_interval=1)
    machine.run("Main")
    result = machine.replay_backup("Main")
    assert result.ok
    verifier = machine._digest_verifier
    assert verifier.final_verified
    assert verifier.epochs_verified == \
        machine.primary_metrics.digest_records
    assert verifier.pending == 0


@pytest.mark.parametrize("strategy", ["thread_sched", "lock_sync"])
def test_failover_sweep_passes_digest_checks(strategy):
    probe = _machine(strategy)
    probe.run("Main")
    reference = compute_state_digest(probe.primary_jvm)
    events = probe.shipper.injector.events
    for crash_at in range(1, events + 1):
        machine = probe.clone(crash_at=crash_at)
        result = machine.run("Main")
        assert result.failed_over, crash_at
        assert result.final_result.ok, crash_at
        final = compute_state_digest(machine.backup_jvm)
        assert reference.diff(final) == [], crash_at


def test_digest_disabled_by_default():
    machine = ReplicatedJVM(compile_program(COUNTER), env=Environment(),
                            strategy="thread_sched")
    machine.run("Main")
    assert machine.primary_metrics.digest_records == 0
    assert parse_log(machine.channel.backup_log()).digests == []


def test_clone_carries_digest_interval():
    machine = _machine(digest_interval=3)
    assert machine.clone().digest_interval == 3
    assert machine.clone(digest_interval=None).digest_interval is None


# ======================================================================
# Corrupted replay is caught at the first divergent epoch
# ======================================================================
class _CorruptingHooks(RunHooks):
    """Mutates a Counter object's field on the backup mid-replay, then
    delegates to the verifier's hooks — modelling silent state
    corruption that output comparison would never see."""

    def __init__(self, inner, after_epoch, epoch_source):
        self._inner = inner
        self._after = after_epoch
        self._epochs = epoch_source
        self.corrupted_at = None

    def _maybe_corrupt(self, jvm):
        if self.corrupted_at is None and self._epochs() >= self._after:
            for thread in jvm.scheduler.threads:
                for frame in thread.frames:
                    for value in frame.locals:
                        if (isinstance(value, JObject)
                                and value.class_name == "Counter"):
                            value.fields["value"] += 100
                            self.corrupted_at = self._epochs()
                            return

    def on_slice_end(self, jvm, thread, reason):
        self._maybe_corrupt(jvm)
        self._inner.on_slice_end(jvm, thread, reason)

    def on_exit(self, jvm, result):
        self._inner.on_exit(jvm, result)


def test_corrupted_replay_raises_divergence_error():
    machine = _machine("thread_sched", digest_interval=1)
    machine.run("Main")
    assert machine.primary_metrics.digest_records > 2

    backup = machine._build_backup()
    hooks = _CorruptingHooks(
        backup.run_hooks, after_epoch=1,
        epoch_source=machine._backup_driver.digest_epoch_source(),
    )
    backup.run_hooks = hooks
    with pytest.raises(DivergenceError) as excinfo:
        backup.run("Main")
    err = excinfo.value
    assert hooks.corrupted_at is not None
    # Caught at the first digest epoch after the corruption, naming the
    # corrupted component.
    assert "heap" in err.components
    assert err.epoch > hooks.corrupted_at - 1
    assert f"epoch {err.epoch}" in str(err)


def test_verifier_reports_first_divergent_epoch_in_order():
    base = (("heap", 1), ("frames", 2), ("monitors", 3), ("sched", 4))
    bad = (("heap", 99), ("frames", 2), ("monitors", 3), ("sched", 4))

    class _FrozenJVM:
        pass

    records = [DigestRecord(1, False, base), DigestRecord(2, False, bad)]
    epochs = {"n": 0}
    verifier = DigestVerifier(records, None,
                              epoch_source=lambda: epochs["n"])

    import repro.replication.digest as digest_mod
    original = digest_mod.compute_state_digest
    digest_mod.compute_state_digest = \
        lambda jvm, env, include_env=True: StateDigest(base)
    try:
        epochs["n"] = 2
        with pytest.raises(DivergenceError) as excinfo:
            verifier.check_slice(_FrozenJVM())
    finally:
        digest_mod.compute_state_digest = original
    assert excinfo.value.epoch == 2
    assert excinfo.value.components == ("heap",)
    assert verifier.epochs_verified == 1

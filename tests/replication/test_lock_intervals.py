"""Interval-coalesced lock replication (the §6 optimization, implemented)."""

import pytest

from repro.env.environment import Environment
from repro.errors import RecoveryError
from repro.minijava import compile_program
from repro.replication.lock_intervals import BackupIntervalLockSync
from repro.replication.machine import ReplicatedJVM, parse_log
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import LockIntervalRecord, decode_record, encode
from repro.runtime.monitors import Monitor
from repro.runtime.threads import JavaThread, ThreadState

MULTI = """
class Counter {
    int n;
    synchronized void add(int d) { n = n + d; }
    synchronized int get() { return n; }
}
class W extends Thread {
    Counter c; int d;
    W(Counter c, int d) { this.c = c; this.d = d; }
    void run() { for (int i = 0; i < 100; i++) { c.add(d); } }
}
class Main {
    static void main(String[] args) {
        Counter c = new Counter();
        W a = new W(c, 1); W b = new W(c, 10);
        a.start(); b.start(); a.join(); b.join();
        System.println("total=" + c.get());
    }
}
"""


def test_interval_record_round_trip():
    rec = LockIntervalRecord((0, 3), 1234)
    assert decode_record(encode(rec)) == rec


def test_intervals_compress_the_log_versus_per_acquisition():
    def records_for(strategy):
        env = Environment()
        machine = ReplicatedJVM(compile_program(MULTI), env=env,
                                strategy=strategy)
        machine.run("Main")
        machine.channel.flush()
        return machine, parse_log(machine.channel.backup_log())

    plain_machine, plain = records_for("lock_sync")
    interval_machine, intervals = records_for("lock_intervals")

    assert len(plain.lock_acqs) > 5 * len(intervals.intervals)
    assert interval_machine.primary_metrics.bytes_sent < \
        plain_machine.primary_metrics.bytes_sent
    # No id maps at all: lock identities never cross the wire.
    assert intervals.id_maps == []
    # The intervals cover every acquisition.
    covered = sum(r.count for r in intervals.intervals)
    assert covered == interval_machine.primary_metrics.locks_acquired


def test_interval_replay_reaches_identical_state():
    env = Environment()
    machine = ReplicatedJVM(compile_program(MULTI), env=env,
                            strategy="lock_intervals")
    result = machine.run("Main")
    assert result.final_result.ok
    primary_digest = machine.primary_jvm.state_digest()
    replay = machine.replay_backup("Main")
    assert replay.ok
    assert machine.backup_jvm.state_digest() == primary_digest
    assert env.console.transcript() == "total=1100\n"


def test_interval_crash_sweep_exactly_once():
    env = Environment()
    machine = ReplicatedJVM(compile_program(MULTI), env=env,
                            strategy="lock_intervals")
    machine.run("Main")
    events = machine.shipper.injector.events
    for crash_at in range(1, events + 1):
        env = Environment()
        machine = ReplicatedJVM(compile_program(MULTI), env=env,
                                strategy="lock_intervals",
                                crash_at=crash_at)
        result = machine.run("Main")
        assert result.final_result.ok, crash_at
        assert env.console.transcript() == "total=1100\n", crash_at


def _thread(vid):
    t = JavaThread(vid, None)
    t.state = ThreadState.RUNNABLE
    return t


def test_backup_enforces_interval_turns():
    backup = BackupIntervalLockSync(
        [LockIntervalRecord((0,), 2), LockIntervalRecord((0, 0), 1)],
        ReplicationMetrics(),
    )
    a, b = _thread((0,)), _thread((0, 0))
    m = Monitor()
    assert backup.may_acquire(b, m) is False
    assert backup.may_acquire(a, m) is True
    backup.on_acquired(a, m)
    assert backup.may_acquire(b, m) is False   # a's interval has 1 left
    backup.on_acquired(a, m)
    assert backup.may_acquire(b, m) is True    # now b's turn
    backup.on_acquired(b, m)
    assert not backup.in_recovery
    # Post-recovery: everyone admitted.
    assert backup.may_acquire(a, m) is True


def test_backup_detects_foreign_acquisition():
    backup = BackupIntervalLockSync(
        [LockIntervalRecord((0,), 1)], ReplicationMetrics(),
    )
    impostor = _thread((9,))
    with pytest.raises(RecoveryError, match="interval replay diverged"):
        backup.on_acquired(impostor, Monitor())


def test_single_threaded_program_is_one_interval_per_commit():
    source = """
        class Main {
            static Object lock = new Object();
            static void main(String[] args) {
                for (int i = 0; i < 50; i++) { synchronized (lock) { } }
                System.println("done");
            }
        }
    """
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy="lock_intervals")
    machine.run("Main")
    machine.channel.flush()
    parsed = parse_log(machine.channel.backup_log())
    # All 50 acquisitions coalesce into a single interval (flushed at
    # the output commit for the println).
    assert len(parsed.intervals) == 1
    assert parsed.intervals[0].count == 50

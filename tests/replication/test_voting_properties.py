"""Property-based testing of the quorum tally.

The :class:`~repro.replication.voting.QuorumTally` is the safety core
of Byzantine mode: every output release hangs off one of its
certificates.  Hypothesis explores the edge cases a scenario test
would hand-pick:

* the **f = 0 degenerate group** (n = 1) where every vote is its own
  quorum;
* **tie impossibility** — with at most two distinct values among
  ``2f + 1`` voters, exactly one value can reach ``f + 1`` matching
  votes, so a formed certificate is unique and final;
* **duplicate and reordered ballots** — the certificate (and the set
  of outvoted members) is independent of delivery order, and a
  replayed duplicate is idempotent;
* the **wire round trip** — ballots framed as
  :class:`~repro.replication.voting.VoteRecord` survive a seeded
  faulty transport (drops + retransmit, duplication, reordering) and
  tally to the same certificate;
* **checkpoint-truncation boundaries** — votes crossing
  :meth:`~repro.replication.voting.QuorumTally.truncate_below` are
  dropped below the floor and untouched above it, and stragglers from
  truncated eras can never resurrect a slot.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.replication.records import decode_record, encode
from repro.replication.transport import FaultyTransport
from repro.replication.voting import QuorumTally, Vote, VoteRecord

#: Group sizes under test: degenerate, the paper-plus-one triple, and
#: one larger quorum.
GROUP_SIZES = (1, 3, 5)


def _ballots(n, values):
    """One vote per member: member i votes values[i]."""
    return [Vote(i, 0, "digest", (7,), value)
            for i, value in enumerate(values)]


def _tally_all(n, votes):
    tally = QuorumTally(n)
    verdicts = []
    for vote in votes:
        verdicts.extend(tally.add(vote))
    return tally, verdicts


# ======================================================================
# f = 0: the degenerate single-member group
# ======================================================================
@given(value=st.integers(0, 2 ** 128 - 1))
def test_single_member_vote_is_its_own_quorum(value):
    tally, verdicts = _tally_all(1, _ballots(1, [value]))
    cert = tally.certificate(("digest", 0, (7,)))
    assert cert is not None and cert.value == value
    assert cert.voters == (0,)
    assert [v.kind for v in verdicts] == ["certified"]


# ======================================================================
# Tie impossibility under 2f + 1
# ======================================================================
@given(
    n=st.sampled_from(GROUP_SIZES),
    choices=st.lists(st.booleans(), min_size=5, max_size=5),
)
def test_two_values_cannot_both_reach_quorum(n, choices):
    """However 2f+1 voters split between two values, exactly one side
    reaches f+1: a certificate always forms, is unique, and the losing
    side has at most f members — all of them outvoted."""
    values = [100 if choices[i % len(choices)] else 200 for i in range(n)]
    tally, verdicts = _tally_all(n, _ballots(n, values))
    cert = tally.certificate(("digest", 0, (7,)))
    assert cert is not None                      # no hung ballot
    winners = [i for i in range(n) if values[i] == cert.value]
    losers = [i for i in range(n) if values[i] != cert.value]
    assert len(winners) >= tally.quorum
    assert len(losers) <= tally.f
    assert len([v for v in verdicts if v.kind == "certified"]) == 1
    assert sorted(v.member for v in verdicts
                  if v.kind == "outvoted") == losers


# ======================================================================
# Order independence, duplicates
# ======================================================================
@given(
    n=st.sampled_from(GROUP_SIZES),
    data=st.data(),
)
@settings(max_examples=60)
def test_certificate_is_order_independent(n, data):
    values = [data.draw(st.sampled_from([100, 200]), label=f"v{i}")
              for i in range(n)]
    votes = _ballots(n, values)
    shuffled = data.draw(st.permutations(votes))
    # Interleave duplicates of already-cast votes.
    duplicated = []
    for vote in shuffled:
        duplicated.append(vote)
        if duplicated and data.draw(st.booleans()):
            duplicated.append(data.draw(st.sampled_from(duplicated)))
    base, base_verdicts = _tally_all(n, votes)
    perm, perm_verdicts = _tally_all(n, duplicated)
    key = ("digest", 0, (7,))
    assert base.certificate(key).value == perm.certificate(key).value
    assert (sorted(v.member for v in base_verdicts if v.kind == "outvoted")
            == sorted(v.member for v in perm_verdicts
                      if v.kind == "outvoted"))
    # Each member is ruled on at most once, however often its vote
    # was replayed.
    assert perm.votes_accepted == n
    assert perm.votes_ignored == len(duplicated) - n


@given(n=st.sampled_from((3, 5)))
def test_equivocation_is_ruled_exactly_once(n):
    tally = QuorumTally(n)
    first = Vote(0, 0, "digest", (7,), 100)
    second = Vote(0, 0, "digest", (7,), 200)
    assert tally.add(first) == []
    verdicts = tally.add(second)
    assert [v.kind for v in verdicts] == ["equivocation"]
    assert verdicts[0].member == 0
    # Replaying either value yields no further ruling.
    assert tally.add(second) == []
    assert all(v.kind != "equivocation" for v in tally.add(first))


# ======================================================================
# The wire round trip over a faulty transport
# ======================================================================
@given(
    seed=st.integers(0, 2 ** 16),
    values=st.lists(st.sampled_from([100, 200]), min_size=3, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_votes_survive_faulty_transport(seed, values):
    """Frame each ballot as a VoteRecord, ship the batches through a
    seeded lossy/duplicating/reordering link, settle, decode what
    arrived, and tally: same certificate as the direct feed."""
    records = [VoteRecord(i, 0, "digest", (7,), v)
               for i, v in enumerate(values)]
    transport = FaultyTransport(seed=seed, drop_rate=0.2, dup_rate=0.2,
                                reorder_rate=0.3)
    for record in records:
        transport.send([encode(record)])
    transport.settle()
    transport.close()

    arrived = [decode_record(raw) for raw in transport.delivered]
    assert [(r.member, r.value) for r in arrived] \
        == [(r.member, r.value) for r in records]   # prefix property held

    tally = QuorumTally(3)
    for r in arrived:
        tally.add(Vote(r.member, r.era, r.subject, r.index, r.value,
                       r.engine))
    direct, _ = _tally_all(3, _ballots(3, values))
    key = ("digest", 0, (7,))
    assert tally.certificate(key).value == direct.certificate(key).value


# ======================================================================
# Votes crossing a truncation boundary
# ======================================================================
@given(
    floor=st.integers(1, 4),
    eras=st.lists(st.integers(0, 5), min_size=1, max_size=12),
)
def test_truncation_drops_only_older_eras(floor, eras):
    tally = QuorumTally(3)
    for era in eras:
        for member in range(3):
            tally.add(Vote(member, era, "digest", (era,), 1000 + era))
    tally.truncate_below(floor)
    for era in set(eras):
        cert = tally.certificate(("digest", era, (era,)))
        if era >= floor:
            assert cert is not None and cert.value == 1000 + era
        else:
            assert cert is None
    # Stragglers below the floor are ignored — they can neither form a
    # slot nor a certificate.
    ignored_before = tally.votes_ignored
    for member in range(3):
        tally.add(Vote(member, floor - 1, "digest", (99,), 555))
    assert tally.votes_ignored == ignored_before + 3
    assert tally.certificate(("digest", floor - 1, (99,))) is None
    assert tally.uncertified(floor - 1) == []


def test_even_group_sizes_rejected():
    from repro.errors import ReplicationError
    for n in (0, 2, 4):
        with pytest.raises(ReplicationError):
            QuorumTally(n)

"""Seeded connection resets on the socket transport.

The delivered log must stay a *contiguous prefix* of the sent record
sequence across any number of connection resets: the sender keeps every
unacked DATA frame in its outbox and retransmits after reconnecting,
the receiver keeps its cumulative expected sequence across connections
and discards duplicates.  ``reset_every``/``reset_rate`` with a fixed
seed make this path deterministic enough to assert on.
"""

import socket

import pytest

from repro.replication.transport import SocketTransport


def _localhost_sockets_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


needs_sockets = pytest.mark.skipif(
    not _localhost_sockets_available(),
    reason="localhost TCP sockets unavailable",
)

pytestmark = [pytest.mark.socket, needs_sockets]


def _records(n):
    return [f"record-{i:03d}".encode() for i in range(n)]


def test_periodic_resets_preserve_contiguous_prefix():
    transport = SocketTransport(reset_every=3)
    try:
        sent = _records(20)
        for record in sent:
            transport.send([record])
        transport.settle()
        assert transport.stats.connection_resets >= 5
        assert transport.stats.reconnects >= 1
        # No loss, no duplication, no reordering.
        assert transport.delivered == sent
    finally:
        transport.close()


def test_random_resets_are_seeded_and_survivable():
    results = []
    for _ in range(2):
        transport = SocketTransport(reset_rate=0.4, reset_seed=99)
        try:
            sent = _records(15)
            for record in sent:
                transport.send([record])
                transport.wait_ack()
            transport.settle()
            assert transport.delivered == sent
            results.append(transport.stats.connection_resets)
        finally:
            transport.close()
    assert results[0] > 0
    assert results[0] == results[1]        # same seed, same fault schedule


def test_reset_between_send_and_ack_wait():
    """A reset injected right after a send forces the ack path itself
    through the reconnect-retransmit round."""
    transport = SocketTransport(reset_every=1)
    try:
        for record in _records(6):
            transport.send([record])
            transport.wait_ack()           # every wait follows a reset
        transport.settle()
        assert transport.delivered == _records(6)
        assert transport.stats.connection_resets == 6
    finally:
        transport.close()


def test_fresh_carries_reset_injection_config():
    transport = SocketTransport(reset_every=2, reset_seed=7)
    replacement = transport.fresh()
    try:
        assert replacement.reset_every == 2
        assert replacement.reset_seed == 7
        assert replacement.address != transport.address
    finally:
        transport.close()
        replacement.close()

"""Steady-state incremental checkpointing: bounded logs, bounded replay.

The tentpole invariants, at the pair-machine and replica-group levels:

* while the primary is healthy, the retained log is truncated at every
  adopted checkpoint, so its high-water mark stays bounded by the
  emission interval instead of growing with run length;
* a failover replays only the post-checkpoint tail — the promoted
  backup restores the digest-verified basis and consumes the few
  records shipped since, not the whole history;
* exactly-once outputs and final-state equivalence survive a crash at
  any point, including inside a delta emission;
* log truncation never drops records a re-integration transfer still
  needs — the steady emitter only arms after the arm-time transfer is
  fully adopted, and every truncation happens at an adoption boundary.
"""

import pytest

from repro.env.environment import Environment
from repro.errors import ReplicationError
from repro.minijava import compile_program
from repro.replication.config import ReplicationConfig
from repro.replication.machine import ReplicatedJVM
from repro.replication.supervisor import ReplicaGroup

MULTI = """
    class W extends Thread {
        static Object lock = new Object();
        static int shared;
        void run() {
            for (int i = 0; i < 100; i++) {
                synchronized (lock) { shared = shared + 1; }
            }
        }
    }
    class Main {
        static void main(String[] args) {
            W a = new W(); W b = new W();
            a.start(); b.start(); a.join(); b.join();
            System.println(W.shared);
        }
    }
"""

ECHO_SERVER = """
class Main {
    static void main(String[] args) {
        boolean run = true;
        int served = 0;
        while (run) {
            String req = Server.recv("req");
            if (req.startsWith("stop")) {
                run = false;
            } else {
                Server.reply(req, "ok:" + req.length());
                served = served + 1;
            }
        }
        System.println("served " + served);
    }
}
"""


@pytest.fixture(scope="module")
def multi_registry():
    return compile_program(MULTI)


@pytest.fixture(scope="module")
def echo_registry():
    return compile_program(ECHO_SERVER)


# ======================================================================
# Pair machine: emission, truncation, bounded replay
# ======================================================================
def test_steady_emissions_truncate_the_log(multi_registry):
    env = Environment()
    machine = ReplicatedJVM(multi_registry, env=env,
                            config=ReplicationConfig(
                                strategy="lock_sync",
                                checkpoint_interval=2))
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    assert env.console.lines() == ["200"]
    metrics = machine.primary_metrics
    assert machine._steady.emissions >= 2
    assert metrics.deltas_shipped >= 1          # full first, deltas after
    assert metrics.deltas_composed == metrics.deltas_shipped
    assert metrics.records_truncated > 0
    # Bounded log: the high-water mark must sit well below the total
    # shipped record count (the unbounded baseline).
    assert 0 < metrics.retained_records_max < metrics.records_sent


def test_steady_interval_off_means_no_emissions(multi_registry):
    env = Environment()
    machine = ReplicatedJVM(multi_registry, env=env,
                            config=ReplicationConfig(strategy="lock_sync"))
    machine.run("Main")
    assert machine._steady is None
    metrics = machine.primary_metrics
    assert metrics.deltas_shipped == 0
    assert metrics.records_truncated == 0


def test_steady_failover_replays_only_the_tail(multi_registry):
    """Crash late in the run: without checkpointing the backup would
    replay the entire history; with it, only the retained tail."""
    # Baseline replay size, no checkpointing.
    env = Environment()
    baseline = ReplicatedJVM(multi_registry, env=env,
                             config=ReplicationConfig(
                                 strategy="lock_sync", crash_at=200))
    assert baseline.run("Main").failed_over
    assert env.console.lines() == ["200"]
    unbounded_tail = baseline.backup_metrics.recovery_tail_records

    env = Environment()
    machine = ReplicatedJVM(multi_registry, env=env,
                            config=ReplicationConfig(
                                strategy="lock_sync", crash_at=200,
                                checkpoint_interval=2))
    result = machine.run("Main")
    assert result.failed_over
    assert env.console.lines() == ["200"]
    backup = machine.backup_metrics
    assert backup.checkpoints_restored == 1
    assert backup.recovery_tail_records < unbounded_tail
    assert (backup.recovery_tail_records
            <= machine.primary_metrics.retained_records_max + 32)


@pytest.mark.parametrize("strategy", ["thread_sched", "lock_sync"])
def test_steady_crash_sweep_is_exactly_once(multi_registry, strategy):
    """Crash at a spread of injector events — including indices inside
    delta emissions — and require identical output every time."""
    env = Environment()
    pilot = ReplicatedJVM(multi_registry, env=env,
                          config=ReplicationConfig(
                              strategy=strategy, checkpoint_interval=2))
    pilot.run("Main")
    events = pilot.shipper.injector.events
    assert pilot._steady.emissions >= 2
    stride = max(1, events // 20)
    for crash_at in range(1, events + 1, stride):
        env = Environment()
        machine = pilot.clone(env=env, crash_at=crash_at)
        result = machine.run("Main")
        assert result.failed_over, crash_at
        assert env.console.lines() == ["200"], crash_at


def test_steady_serving_failover_with_bounded_tail(echo_registry):
    env = Environment()
    machine = ReplicatedJVM(echo_registry, env=env,
                            config=ReplicationConfig(
                                checkpoint_interval=3, crash_at=60))
    machine.start_serving("Main", port="req")
    for i in range(12):
        assert machine.serve(f"r{i:02d} get {i}") == \
            f"ok:{len(f'r{i:02d} get {i}')}"
    result = machine.stop_serving("stop now")
    assert result is not None
    assert env.responses.count() == 12
    assert env.responses.duplicates == 0
    assert "served 12" in env.console.transcript()
    backup = machine.backup_metrics
    assert backup.checkpoints_restored == 1
    assert (backup.recovery_tail_records
            <= machine.primary_metrics.retained_records_max + 32)


# ======================================================================
# Configuration surface
# ======================================================================
def test_hot_backup_excludes_steady_checkpointing(multi_registry):
    with pytest.raises(ReplicationError, match="hot_backup"):
        ReplicatedJVM(multi_registry, env=Environment(),
                      config=ReplicationConfig(hot_backup=True,
                                               checkpoint_interval=4))


def test_invalid_interval_is_rejected(multi_registry):
    with pytest.raises(ReplicationError, match="checkpoint_interval"):
        ReplicatedJVM(multi_registry, env=Environment(),
                      config=ReplicationConfig(checkpoint_interval=0)
                      )._build_primary()


def test_clone_carries_checkpoint_interval(multi_registry):
    machine = ReplicatedJVM(multi_registry, env=Environment(),
                            config=ReplicationConfig(
                                strategy="lock_sync",
                                checkpoint_interval=2))
    machine.run("Main")
    clone = machine.clone()
    assert clone.checkpoint_interval == 2
    off = machine.clone(checkpoint_interval=None)
    assert off.checkpoint_interval is None
    assert off.run("Main").outcome == "primary_completed"


# ======================================================================
# Replica group: k bases, chained crashes, transfer/truncation safety
# ======================================================================
def test_group_steady_survives_chained_crashes(echo_registry):
    env = Environment()
    group = ReplicaGroup(echo_registry, env=env,
                         config=ReplicationConfig(
                             checkpoint_interval=4, k_backups=2,
                             crash_schedule={0: 25, 1: 40},
                             max_failures=6))
    group.start_serving("Main", port="req")
    for i in range(20):
        assert group.serve(f"r{i:03d} get {i}") is not None
    result = group.stop_serving("stop")
    assert result.outcome == "completed"
    assert result.failures_survived == 2
    assert env.responses.count() == 20
    assert env.responses.duplicates == 0
    assert "served 20" in env.console.transcript()
    # Every crashed generation had adopted steady checkpoints, and the
    # recoveries they seeded replayed only tails.
    crashed = [r for r in group.reports if r.outcome == "crashed"]
    assert crashed and all(r.steady_checkpoints > 0 for r in crashed)
    for report in group.reports:
        if report.recovery_metrics is not None:
            assert report.recovery_metrics.checkpoints_restored == 1
            assert report.recovery_metrics.recovery_tail_records <= 64


def test_group_truncation_never_races_arm_transfer(multi_registry):
    """Satellite regression: with the most aggressive interval (1) and
    a tiny chunk size, every generation truncates its log constantly —
    yet a crash *inside* the next re-integration transfer must still
    recover, because steady emission only arms after the arm transfer
    is fully adopted and truncation only ever happens at an adoption
    boundary.  A truncation racing the in-flight transfer would tear
    the chunk stream and this chain could not complete."""
    # Generation 1's transfer spans checkpoint_chunks + 1 events.
    env = Environment()
    pilot = ReplicaGroup(multi_registry, env=env,
                         config=ReplicationConfig(
                             strategy="thread_sched",
                             checkpoint_interval=1, chunk_bytes=256,
                             crash_schedule={0: 30}, max_failures=4))
    assert pilot.run("Main").outcome == "completed"
    gen0 = pilot.reports[0]
    gen1 = pilot.reports[1]
    assert gen0.steady_checkpoints > 0
    assert gen0.primary_metrics.records_truncated > 0
    transfer_events = gen1.checkpoint_chunks + 1
    assert transfer_events >= 2

    for crash_at in range(1, transfer_events + 1):
        env = Environment()
        group = ReplicaGroup(multi_registry, env=env,
                             config=ReplicationConfig(
                                 strategy="thread_sched",
                                 checkpoint_interval=1, chunk_bytes=256,
                                 crash_schedule={0: 30, 1: crash_at},
                                 max_failures=4))
        result = group.run("Main")
        assert result.outcome == "completed", crash_at
        assert env.console.lines() == ["200"], crash_at
        assert group.reports[1].outcome == "crashed_in_transfer", crash_at


def test_group_k_bases_stay_in_lockstep(echo_registry):
    """All k recovery bases are re-armed from the same stream; the
    composition check runs at every adoption, so a completed run with
    crashes is evidence every slot agreed at every step."""
    env = Environment()
    group = ReplicaGroup(echo_registry, env=env,
                         config=ReplicationConfig(
                             checkpoint_interval=3, k_backups=3,
                             crash_schedule={0: 30}))
    group.start_serving("Main", port="req")
    for i in range(10):
        group.serve(f"r{i:03d} get {i}")
    result = group.stop_serving("stop")
    assert result.outcome == "completed"
    assert len(group._backup_bases) == 3
    digests = {base.digest.components for base in group._backup_bases}
    assert len(digests) == 1

"""Native invocation policies: interception, adoption, suppression."""

import pytest

from repro.env.environment import Environment
from repro.errors import RecoveryError
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM, parse_log
from repro.replication.records import NativeResultRecord, OutputIntentRecord


def _run(source, strategy="lock_sync", crash_at=None, env=None):
    env = env or Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy=strategy, crash_at=crash_at)
    result = machine.run("Main")
    return machine, result, env


def test_deterministic_natives_not_logged():
    machine, _, _ = _run("""
        class Main {
            static void main(String[] args) {
                float x = 0.0;
                for (int i = 0; i < 50; i++) { x = x + Math.sqrt(2.0); }
                System.println((int) x);
            }
        }
    """)
    parsed = parse_log(machine.channel.backup_log())
    signatures = {r.signature for rs in parsed.results.values() for r in rs}
    assert "Math.sqrt/1" not in signatures
    assert machine.primary_metrics.natives_intercepted == 0


def test_nondeterministic_results_logged_per_thread():
    machine, _, _ = _run("""
        class Reader extends Thread {
            void run() {
                int t = System.currentTimeMillis();
            }
        }
        class Main {
            static void main(String[] args) {
                int t = System.currentTimeMillis();
                Reader r = new Reader();
                r.start(); r.join();
            }
        }
    """)
    parsed = parse_log(machine.channel.backup_log())
    assert (0,) in parsed.results          # main thread's clock read
    assert (0, 0) in parsed.results        # child's clock read
    assert machine.primary_metrics.natives_intercepted == 2


def test_output_intent_precedes_result_in_log():
    machine, _, _ = _run("""
        class Main {
            static void main(String[] args) {
                System.println("once");
            }
        }
    """)
    from repro.replication.records import decode_record
    records = [decode_record(b) for b in machine.channel.backup_log()]
    kinds = [type(r).__name__ for r in records]
    intent_idx = kinds.index("OutputIntentRecord")
    result_idx = kinds.index("NativeResultRecord")
    assert intent_idx < result_idx
    assert machine.primary_metrics.output_commits == 1


def test_backup_adopts_primary_clock_values():
    source = """
        class Main {
            static void main(String[] args) {
                int a = System.currentTimeMillis();
                int b = System.currentTimeMillis();
                System.println(a + ":" + b);
            }
        }
    """
    env = Environment()
    machine, result, _ = _run(source, env=env)
    primary_output = env.console.transcript()
    machine.replay_backup("Main")
    # Replay suppressed the println; but the backup computed the SAME
    # string, which the state digest equality proves.
    assert env.console.transcript() == primary_output
    assert machine.backup_jvm.state_digest() == \
        machine.primary_jvm.state_digest()
    assert machine.backup_metrics.natives_intercepted == 2
    assert machine.backup_metrics.outputs_suppressed == 1


def test_backup_detects_signature_mismatch():
    from repro.replication.ndnatives import BackupNativePolicy
    from repro.replication.sehandlers import SideEffectManager
    from repro.replication.metrics import ReplicationMetrics
    from repro.runtime.stdlib import default_natives
    from repro.runtime.threads import JavaThread

    policy = BackupNativePolicy(
        results={(0,): [NativeResultRecord((0,), 1, "Env.randomInt/1", 5)]},
        intents={},
        se_manager=SideEffectManager(),
        metrics=ReplicationMetrics(),
    )
    thread = JavaThread((0,), None)
    spec = default_natives().lookup("System.currentTimeMillis/0")
    with pytest.raises(RecoveryError, match="diverged"):
        policy.invoke(None, spec, thread, None, [])


def test_array_out_params_adopted():
    """Files reads that fill arrays (via toChars of a read line) replay
    from the log with identical contents."""
    source = """
        class Main {
            static void main(String[] args) {
                int fd = Files.open("in.txt", "r");
                String line = Files.readLine(fd);
                Files.close(fd);
                int[] chars = line.toChars();
                int sum = 0;
                for (int i = 0; i < chars.length; i++) { sum += chars[i]; }
                System.println(sum);
            }
        }
    """
    env = Environment()
    env.fs.put("in.txt", "abc\n")
    machine, result, _ = _run(source, env=env)
    assert result.final_result.ok
    assert env.console.lines() == [str(ord("a") + ord("b") + ord("c"))]
    machine.replay_backup("Main")
    assert machine.backup_jvm.state_digest() == \
        machine.primary_jvm.state_digest()


def test_exceptions_from_natives_replayed():
    """A native that threw at the primary (missing file) must throw the
    identical Java exception at the backup."""
    source = """
        class Main {
            static void main(String[] args) {
                try {
                    int fd = Files.open("missing.txt", "r");
                    System.println("opened " + fd);
                } catch (IOException e) {
                    System.println("io error");
                }
                System.println("done");
            }
        }
    """
    env = Environment()
    machine, result, _ = _run(source, env=env)
    assert env.console.lines() == ["io error", "done"]
    machine.replay_backup("Main")
    assert machine.backup_jvm.state_digest() == \
        machine.primary_jvm.state_digest()
    assert env.console.lines() == ["io error", "done"]  # no duplicates


def test_live_natives_after_log_exhaustion():
    """After replay consumes the log, natives execute live against the
    backup's own session (fresh clock/entropy)."""
    source = """
        class Main {
            static void main(String[] args) {
                System.println("t=" + (System.currentTimeMillis() > 0));
                System.println("r=" + (Env.randomInt(10) >= 0));
            }
        }
    """
    machine, result, env = _run(source, crash_at=4)
    assert result.failed_over
    assert result.final_result.ok
    assert env.console.lines() == ["t=true", "r=true"]

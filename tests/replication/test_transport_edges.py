"""FaultyTransport edge cases: duplicate-then-reorder, a dropped final
ack before output commit, backpressure stall accounting — and through
it all, the delivered log stays a contiguous prefix of what was sent."""

import pytest

from repro.env.environment import Environment
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM
from repro.replication.transport import (
    FAULT_PROFILES,
    FaultProfile,
    FaultyTransport,
)


def _batches(n, size=2):
    return [[f"b{i}r{j}".encode() for j in range(size)] for i in range(n)]


def _is_prefix(delivered, batches):
    flat = [record for batch in batches for record in batch]
    return delivered == flat[:len(delivered)]


# ======================================================================
# Duplicate-then-reorder of the same record
# ======================================================================
def test_duplicate_then_reorder_delivers_exactly_once():
    """Every message is duplicated and the copies take wildly different
    paths (reordering), yet each record lands in the log exactly once,
    in send order."""
    profile = FaultProfile(name="dupreorder", dup_rate=1.0,
                           reorder_rate=0.6, jitter=6.0)
    transport = FaultyTransport(profile, seed=7)
    batches = _batches(8)
    for batch in batches:
        transport.send(batch)
        assert _is_prefix(transport.delivered, batches)
    transport.settle()
    assert transport.delivered == [r for b in batches for r in b]
    assert transport.stats.messages_duplicated >= 8
    # A duplicate overtaking a later message is the reorder case; the
    # seeded schedule above produces both held messages and late dups.
    assert transport.stats.messages_reordered > 0


def test_late_duplicate_of_delivered_message_is_ignored():
    """A copy arriving after its sequence number was already delivered
    must be dropped by the receiver (and re-acked), not appended."""
    profile = FaultProfile(name="lagdup", dup_rate=1.0, reorder_rate=1.0,
                           jitter=20.0)
    for seed in range(5):
        transport = FaultyTransport(profile, seed=seed)
        batches = _batches(5, size=1)
        for batch in batches:
            transport.send(batch)
        transport.settle()
        assert transport.delivered == [r for b in batches for r in b], seed


# ======================================================================
# Dropped final ack before output commit
# ======================================================================
def test_dropped_final_ack_is_recovered_by_retransmission():
    """The backup delivered the record but its ack vanished: the
    primary's output commit must block, retransmit, accept the re-ack,
    and the record must appear in the log exactly once."""
    transport = FaultyTransport(FaultProfile(name="ackdrop"), seed=3)
    dropped = {"n": 0}
    original_ack = transport._send_ack

    def dropping_ack():
        if dropped["n"] == 0:           # swallow only the first ack
            dropped["n"] += 1
            transport.stats.messages_dropped += 1
            return
        original_ack()

    transport._send_ack = dropping_ack
    transport.send([b"intent", b"result"])
    waited = transport.wait_ack()

    assert dropped["n"] == 1
    assert transport.delivered == [b"intent", b"result"]   # exactly once
    assert transport.stats.retransmits >= 1
    assert waited >= transport.profile.retry_timeout
    assert transport.stats.ack_wait_time == pytest.approx(waited)


def test_output_commit_survives_dropped_acks_end_to_end():
    """Machine-level: with a seeded lossy link every output commit
    still completes, outputs land exactly once, and the ack stalls are
    accounted in the metrics."""
    source = """
        class Main {
            static void main() {
                int i = 0;
                while (i < 4) { System.println("out=" + i); i = i + 1; }
            }
        }
    """
    env = Environment()
    machine = ReplicatedJVM(
        compile_program(source), env=env,
        transport=lambda: FaultyTransport(FAULT_PROFILES["lossy"], seed=11),
    )
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    assert env.console.lines() == [f"out={i}" for i in range(4)]
    metrics = machine.primary_metrics
    assert metrics.output_commits == 4
    assert metrics.ack_waits == 4
    # The seeded link drops messages, so recovery work must show up.
    assert metrics.messages_dropped > 0
    assert metrics.retransmits > 0
    assert metrics.ack_wait_time > 0


# ======================================================================
# Backpressure stall accounting
# ======================================================================
def test_backpressure_stalls_are_counted():
    """A window-1 link with high latency: every second send must stall
    until the previous batch is acked, and each stall increments the
    counter exactly as the wait loop spins."""
    profile = FaultProfile(name="narrow", window=1, latency=30.0)
    transport = FaultyTransport(profile, seed=5)
    batches = _batches(4, size=1)
    transport.send(batches[0])
    assert transport.stats.backpressure_stalls == 0
    for batch in batches[1:]:
        transport.send(batch)
    assert transport.stats.backpressure_stalls >= 3
    transport.settle()
    assert transport.delivered == [r for b in batches for r in b]


def test_backpressure_stall_time_advances_virtual_clock():
    profile = FaultProfile(name="narrow2", window=1, latency=25.0)
    transport = FaultyTransport(profile, seed=6)
    transport.send([b"a"])
    before = transport.now
    transport.send([b"b"])     # must wait out the first batch's ack
    assert transport.now >= before + profile.latency


# ======================================================================
# The contiguous-prefix invariant
# ======================================================================
@pytest.mark.parametrize("profile_name", ["lossy", "flaky", "jittery",
                                          "chaotic"])
def test_delivered_log_is_always_a_contiguous_prefix(profile_name):
    """At every observable moment — mid-send, post-crash, post-drain —
    the delivered log is a contiguous prefix of the sent batches, for
    every fault profile and a spread of seeds and crash points."""
    profile = FAULT_PROFILES[profile_name]
    for seed in range(6):
        for crash_after in (1, 3, 5, None):
            transport = FaultyTransport(profile, seed=seed)
            batches = _batches(6)
            for i, batch in enumerate(batches):
                transport.send(batch)
                assert _is_prefix(transport.delivered, batches), \
                    (profile_name, seed, i)
                if crash_after is not None and i + 1 == crash_after:
                    break
            if crash_after is None:
                transport.settle()
                assert transport.delivered == [r for b in batches
                                               for r in b]
            else:
                transport.crash_sender()
                assert _is_prefix(transport.delivered, batches), \
                    (profile_name, seed, "post-crash")

"""Replication metrics accounting."""

from repro.replication.metrics import ReplicationMetrics


def test_records_logged_sums_all_record_kinds():
    m = ReplicationMetrics()
    m.lock_records = 10
    m.id_maps = 2
    m.schedule_records = 3
    m.native_result_records = 4
    m.se_records = 5
    m.output_commits = 1
    assert m.records_logged == 25


def test_as_dict_round_trips_counters():
    m = ReplicationMetrics(role="backup")
    m.outputs_suppressed = 7
    m.extra["custom"] = 3
    d = m.as_dict()
    assert d["outputs_suppressed"] == 7
    assert d["custom"] == 3
    assert "lock_records" in d


def test_defaults_are_zero():
    m = ReplicationMetrics()
    d = m.as_dict()
    assert d.pop("engine") == "step"   # a label, not a counter
    assert all(v == 0 for v in d.values())

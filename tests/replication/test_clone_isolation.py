"""clone() must not leak run state between sweep iterations: fresh
side-effect handlers, fresh fault counters, identical metrics."""

from repro.env.environment import Environment
from repro.minijava import compile_program
from repro.minijava.extensions import NativeClassSpec, NativeMethodSpec
from repro.replication.machine import ReplicatedJVM
from repro.replication.sehandlers import SideEffectHandler
from repro.replication.transport import FaultyTransport
from repro.runtime.natives import NativeSpec
from repro.runtime.stdlib import build_natives

PRINTER = """
class Main {
    static void main() {
        int i = 0;
        while (i < 3) { System.println("n=" + i); i = i + 1; }
    }
}
"""


def test_clone_twice_and_diff_metrics():
    """Two clones of one template run identically: every counter in
    the primary and backup metrics matches — nothing carried over."""
    template = ReplicatedJVM(compile_program(PRINTER), env=Environment(),
                             strategy="thread_sched", crash_at=4)
    runs = []
    for _ in range(2):
        machine = template.clone()
        result = machine.run("Main")
        assert result.failed_over
        runs.append(machine)
    first, second = runs
    assert first.primary_metrics.as_dict() == second.primary_metrics.as_dict()
    assert first.backup_metrics.as_dict() == second.backup_metrics.as_dict()
    assert first.env.console.lines() == second.env.console.lines()


def test_clone_gets_fresh_side_effect_handlers():
    """A stateful custom handler must not be shared with the clone —
    state it accumulated in one run would corrupt the next."""

    class StickyHandler(SideEffectHandler):
        name = "sticky"

        def __init__(self):
            self.log_calls = 0

        def log(self, session, spec, receiver, args, outcome):
            self.log_calls += 1
            return {"n": self.log_calls}

    handler = StickyHandler()
    template = ReplicatedJVM(compile_program(PRINTER), env=Environment(),
                             se_handlers=[handler])
    clone = template.clone()
    cloned_handler = clone._extra_se_handlers[0]
    assert isinstance(cloned_handler, StickyHandler)
    assert cloned_handler is not handler
    handler.log_calls = 99
    assert cloned_handler.log_calls != 99


def test_cloned_handlers_give_identical_sweep_outcomes():
    """End-to-end: a custom output native plus handler behaves the same
    in back-to-back cloned runs (the regression the leak would break)."""

    class BeepHandler(SideEffectHandler):
        name = "beeper"

        def log(self, session, spec, receiver, args, outcome):
            return {"op": "beep", "count": args[0]}

        def receive(self, state, payload):
            state["beeps"] = state.get("beeps", 0) + payload["count"]

        def test(self, env, state, spec, args):
            expected = state.get("beeps", 0) + args[0]
            return (env.fs.exists("beeps.txt")
                    and len(env.fs.contents("beeps.txt")) >= expected)

    def beep_impl(ctx, receiver, args):
        session = ctx.output_target()
        current = (session.env.fs.contents("beeps.txt")
                   if session.env.fs.exists("beeps.txt") else "")
        session.env.fs.put("beeps.txt", current + "!" * args[0])
        return None

    natives = build_natives()
    natives.register(NativeSpec(
        "Beeper.beep/1", beep_impl,
        is_output=True, testable=True, se_handler="beeper",
    ))
    source = """
        class Main {
            static void main() { Beeper.beep(2); Beeper.beep(3); }
        }
    """
    beeper = NativeClassSpec("Beeper", methods=(
        NativeMethodSpec("beep", ("int",), "void"),
    ))
    registry = compile_program(source, native_classes=[beeper])
    template = ReplicatedJVM(registry, natives=natives, env=Environment(),
                             se_handlers=[BeepHandler()], crash_at=6)
    for _ in range(3):
        machine = template.clone()
        machine.run("Main")
        assert machine.env.fs.contents("beeps.txt") == "!" * 5


def test_clone_resets_fault_counters():
    """A clone of a machine whose faulty transport dropped and
    retransmitted messages starts with zeroed transport stats and
    metrics."""
    template = ReplicatedJVM(
        compile_program(PRINTER), env=Environment(),
        transport=lambda: FaultyTransport(seed=99, drop_rate=0.3),
    )
    template.run("Main")
    stats = template.transport.stats
    assert stats.heartbeats_sent > 0

    clone = template.clone()
    fresh = clone.transport.stats
    assert clone.transport is not template.transport
    assert fresh.heartbeats_sent == 0
    assert fresh.acks_delivered == 0
    assert fresh.retransmits == 0
    assert fresh.messages_dropped == 0
    assert clone.primary_metrics.retransmits == 0
    assert clone.shipper is None      # no run yet, no injector events
    result = clone.run("Main")
    assert result.outcome == "primary_completed"


def test_clone_of_faulty_transport_instance_keeps_fault_schedule():
    """Cloning a machine built around a transport *instance* rebuilds
    an identically-seeded transport: same profile, same seed, zero
    accumulated counters — so sweeps are reproducible."""
    transport = FaultyTransport(seed=1234, drop_rate=0.5)
    template = ReplicatedJVM(compile_program(PRINTER), env=Environment(),
                             transport=transport)
    template.run("Main")
    assert template.transport.stats.messages_dropped > 0

    clone = template.clone()
    assert clone.transport.seed == 1234
    assert clone.transport.profile == transport.profile
    assert clone.transport.stats.messages_dropped == 0
    clone.run("Main")
    assert (clone.transport.stats.messages_dropped
            == template.transport.stats.messages_dropped)

"""Replica-group supervisor: survive repeated failures, not just one.

The acceptance scenario for checkpoint-based re-integration: a group
must survive *k* successive primary crashes — including one that lands
mid-state-transfer — over a faulty transport, and still produce output
byte-identical to an unreplicated run, with every environment effect
applied exactly once and every re-integration digest-verified.
"""

import pytest

from repro.env.environment import Environment
from repro.errors import AlreadyRanError, ReplicationError
from repro.minijava import compile_program
from repro.replication.digest import compute_state_digest
from repro.replication.machine import run_unreplicated
from repro.replication.supervisor import (
    ReplicaGroup,
    default_generation_settings,
)
from repro.replication.transport import FAULT_PROFILES, FaultyTransport

PROGRAM = """
class Main {
    static void main(String[] args) {
        int fd = Files.open("out.txt", "w");
        for (int i = 0; i < 4; i++) {
            Files.writeLine(fd, "line " + i);
        }
        Files.close(fd);
        System.println("wrote 4 lines");
    }
}
"""

#: g0 crashes a few events after its transfer completes; g1 crashes
#: *during* chunk shipment (mid-state-transfer); g2 crashes after
#: re-transfer; g3 runs to completion.  Three successive failures, one
#: of them torn.
CHAIN = {0: 8, 1: 2, 2: 9}


@pytest.fixture(scope="module")
def registry():
    return compile_program(PROGRAM)


@pytest.fixture(scope="module")
def reference(registry):
    env = Environment()
    result, jvm = run_unreplicated(registry, "Main", env=env)
    assert result.ok
    return env.snapshot_stable(), compute_state_digest(jvm, env)


def _group(registry, env, **kwargs):
    kwargs.setdefault("batch_records", 1)
    kwargs.setdefault("chunk_bytes", 256)
    return ReplicaGroup(registry, env=env, **kwargs)


def _flaky_per_generation(generation):
    return FaultyTransport(FAULT_PROFILES["flaky"],
                           seed=1234 + 17 * generation)


# ======================================================================
# The acceptance scenario
# ======================================================================
@pytest.mark.parametrize("strategy",
                         ["lock_sync", "thread_sched", "lock_intervals"])
def test_survives_three_chained_crashes(registry, reference, strategy):
    ref_stable, ref_digest = reference
    env = Environment()
    group = _group(registry, env, strategy=strategy,
                   crash_schedule=dict(CHAIN),
                   transport=_flaky_per_generation)
    result = group.run("Main")

    assert result.outcome == "completed"
    assert result.failures_survived == 3
    assert result.final_generation == 3
    outcomes = [r.outcome for r in group.reports]
    assert outcomes[0] == "crashed"
    assert outcomes[1] == "crashed_in_transfer"
    assert outcomes[2] == "crashed"
    assert outcomes[3] in ("completed", "completed_in_recovery")

    # Byte-identical output, exactly-once env effects.
    assert env.snapshot_stable() == ref_stable
    # Digest-equal final machine state.
    assert compute_state_digest(group.final_jvm, env).diff(ref_digest) == []


def test_mid_transfer_crash_keeps_previous_basis(registry, reference):
    """A torn transfer must not advance the recovery basis: generation 2
    re-recovers from checkpoint C_1 (the last complete one), and the
    torn generation's records are fenced out, provably discarded."""
    ref_stable, _ = reference
    env = Environment()
    group = _group(registry, env, crash_schedule=dict(CHAIN),
                   transport=_flaky_per_generation)
    result = group.run("Main")

    assert result.records_fenced > 0
    # Every completed transfer was digest-verified before adoption.
    restored = sum(r.recovery_metrics.checkpoints_restored
                   for r in group.reports
                   if r.recovery_metrics is not None)
    assert restored >= 1
    assert env.snapshot_stable() == ref_stable


def test_no_crash_completes_like_baseline(registry, reference):
    ref_stable, ref_digest = reference
    env = Environment()
    group = _group(registry, env)
    result = group.run("Main")
    assert result.outcome == "completed"
    assert result.failures_survived == 0
    assert env.snapshot_stable() == ref_stable
    assert compute_state_digest(group.final_jvm, env).diff(ref_digest) == []


def test_single_failover_over_clean_transport(registry, reference):
    ref_stable, _ = reference
    env = Environment()
    group = _group(registry, env, crash_schedule={0: 10})
    result = group.run("Main")
    assert result.failures_survived == 1
    assert group.reports[0].detection_intervals > 0
    assert env.snapshot_stable() == ref_stable


def test_checkpoint_traffic_is_accounted(registry):
    env = Environment()
    group = _group(registry, env, crash_schedule={0: 12})
    result = group.run("Main")
    assert result.checkpoint_bytes_shipped > 0
    for report in group.reports:
        assert report.checkpoint_chunks > 0
        assert report.primary_metrics.checkpoints_shipped >= 1


def test_detector_is_reset_between_generations(registry):
    env = Environment()
    group = _group(registry, env, crash_schedule={0: 8, 1: 8})
    group.run("Main")
    # The final (surviving) generation reuses the same detector object;
    # had reset() not cleared the previous generations' suspicion, the
    # run would have begun already-suspected.
    assert group.detector.suspected is False
    for report in group.reports[:-1]:
        assert report.detection_intervals > 0


def test_crash_budget_is_enforced(registry):
    env = Environment()
    group = _group(registry, env, crash_schedule={0: 5, 1: 5, 2: 5},
                   max_failures=2)
    with pytest.raises(ReplicationError):
        group.run("Main")


def test_group_runs_once(registry):
    env = Environment()
    group = _group(registry, env)
    group.run("Main")
    with pytest.raises(AlreadyRanError):
        group.run("Main")


def test_generation_settings_are_distinct():
    seen = {(s.clock_offset_ms, s.entropy_seed, s.scheduler_seed)
            for s in (default_generation_settings(g) for g in range(6))}
    assert len(seen) == 6

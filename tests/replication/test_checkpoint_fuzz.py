"""Round-trip fuzzing of the checkpoint wire format.

The chunk framing and the snapshot envelope must be exact inverses:
``Checkpoint -> to_chunks -> CheckpointAssembler -> Checkpoint`` is the
identity for any payload, any chunk size, any delivery order, and any
amount of duplication (retransmission after a torn transfer).  On top
of the framing, two structurally interesting snapshots round-trip
through a full restore: an (almost) empty heap right after bootstrap,
and a machine frozen mid-``wait()`` with a thread parked on a monitor.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.environment import Environment
from repro.errors import ReplicationError
from repro.minijava import compile_program
from repro.replication.checkpoint import (
    Checkpoint,
    CheckpointAssembler,
    CheckpointChunkRecord,
    DeltaAssembler,
    compose_delta,
    restore_checkpoint,
    take_checkpoint,
    take_delta_checkpoint,
)
from repro.replication.digest import StateDigest, compute_state_digest
from repro.replication.records import decode_record, encode
from repro.replication.sehandlers import SideEffectManager
from repro.runtime.jvm import JVM, RunHooks
from repro.runtime.stdlib import default_natives

digests = st.lists(
    st.tuples(st.text(min_size=1, max_size=12),
              st.integers(min_value=0, max_value=2**128 - 1)),
    max_size=4,
).map(lambda pairs: StateDigest(tuple(pairs)))


# ======================================================================
# Framing: encode/decode and chunk reassembly
# ======================================================================
@given(generation=st.integers(min_value=0, max_value=1000),
       digest=digests, payload=st.binary(max_size=600))
@settings(max_examples=60, deadline=None)
def test_checkpoint_encode_decode_roundtrip(generation, digest, payload):
    ckpt = Checkpoint(generation, digest, payload)
    assert Checkpoint.decode(ckpt.encode()) == ckpt


@given(generation=st.integers(min_value=0, max_value=50),
       payload=st.binary(max_size=600),
       chunk_bytes=st.integers(min_value=1, max_value=128),
       data=st.data())
@settings(max_examples=60, deadline=None)
def test_chunked_transfer_roundtrip_any_order(generation, payload,
                                              chunk_bytes, data):
    ckpt = Checkpoint(generation, StateDigest(()), payload)
    chunks = ckpt.to_chunks(chunk_bytes)
    # Each chunk survives the record wire format on its own.
    chunks = [decode_record(encode(c)) for c in chunks]
    order = data.draw(st.permutations(range(len(chunks))))

    assembler = CheckpointAssembler()
    for pos, index in enumerate(order):
        got = assembler.feed(chunks[index])
        if pos < len(order) - 1:
            assert got is None
            # Re-feeding an already-seen chunk (retransmission) is a
            # no-op and never completes the transfer early.
            assert assembler.feed(chunks[index]) is None
        else:
            assert got == ckpt
    # Post-completion duplicates are ignored too.
    assert assembler.feed(chunks[0]) is None


@given(payload=st.binary(min_size=80, max_size=300))
@settings(max_examples=20, deadline=None)
def test_inconsistent_chunk_total_is_rejected(payload):
    ckpt = Checkpoint(3, StateDigest(()), payload)
    chunks = ckpt.to_chunks(32)
    assert len(chunks) >= 2
    assembler = CheckpointAssembler()
    assembler.feed(chunks[0])
    forged = CheckpointChunkRecord(3, chunks[1].index,
                                   chunks[1].total + 1, chunks[1].data)
    with pytest.raises(ReplicationError):
        assembler.feed(forged)


# ======================================================================
# Full snapshots through a real restore
# ======================================================================
def _roundtrip(ckpt, registry, env):
    """Ship through chunks, reassemble, restore into a fresh session."""
    assembler = CheckpointAssembler()
    restored = None
    for chunk in ckpt.to_chunks(96):
        got = assembler.feed(decode_record(encode(chunk)))
        if got is not None:
            restored = got
    assert restored == ckpt
    session = env.attach("restore-fuzz")
    try:
        se = SideEffectManager()
        jvm = restore_checkpoint(restored, registry, default_natives(),
                                 session, se_manager=se)
        return compute_state_digest(jvm, include_env=False)
    finally:
        session.destroy()


def test_empty_heap_snapshot_roundtrips():
    registry = compile_program(
        "class Main { static void main(String[] args) {} }")
    env = Environment()
    session = env.attach("origin")
    jvm = JVM(registry, default_natives(), session)
    jvm.bootstrap("Main", [])
    ckpt = take_checkpoint(jvm, SideEffectManager(), generation=0)
    assert _roundtrip(ckpt, registry, env).diff(ckpt.digest) == []


def test_mid_monitor_wait_snapshot_roundtrips():
    """Freeze a machine while a thread is parked in ``wait()`` and
    round-trip it: waiter sets, monitor ownership, and the blocked
    thread's frame stack must all survive the wire."""
    registry = compile_program("""
        class Gate {
            synchronized void park() { this.wait(); }
            synchronized void release() { this.notify(); }
        }
        class Waiter extends Thread {
            Gate g;
            Waiter(Gate g) { this.g = g; }
            void run() { g.park(); }
        }
        class Main {
            static void main(String[] args) {
                Gate g = new Gate();
                Waiter w = new Waiter(g);
                w.start();
                while (!w.isAlive()) { Thread.yield(); }
                Thread.sleep(50);
                g.release();
                w.join();
                System.println("released");
            }
        }
    """)

    class _Pause(Exception):
        pass

    class PauseOnWait(RunHooks):
        def on_slice_end(self, jvm, thread, reason):
            if any(t.state.name == "WAITING"
                   for t in jvm.scheduler.threads):
                raise _Pause()

    env = Environment()
    session = env.attach("origin")
    jvm = JVM(registry, default_natives(), session)
    jvm.run_hooks = PauseOnWait()
    jvm.bootstrap("Main", [])
    with pytest.raises(_Pause):
        jvm.run_to_completion()
    jvm.scheduler.release_current()

    assert any(t.state.name == "WAITING" for t in jvm.scheduler.threads)
    ckpt = take_checkpoint(jvm, SideEffectManager(), generation=1)
    assert _roundtrip(ckpt, registry, env).diff(ckpt.digest) == []


# ======================================================================
# Incremental checkpoints: delta composition ≡ fresh full capture
# ======================================================================
MUTATOR = """
    class Node { int v; Node next; }
    class Main {
        static Node head;
        static int total;
        static void main(String[] args) {
            int[] arr = new int[24];
            for (int i = 0; i < 400; i++) {
                Node n = new Node();
                n.v = i; n.next = head; head = n;
                arr[i % 24] = arr[(i + 7) % 24] + i;
                if (i % 3 == 0) { head = head.next; }
                total = total + arr[i % 24];
            }
            System.println(total);
        }
    }
"""


class _Paused(Exception):
    pass


class _PauseAfter(RunHooks):
    """Stop the run loop after a budget of execution slices."""

    def __init__(self) -> None:
        self.budget = 0

    def on_slice_end(self, jvm, thread, reason):
        if self.budget <= 0:
            return
        self.budget -= 1
        if self.budget == 0:
            raise _Paused()


def _run_slices(jvm, hooks, n) -> bool:
    """Advance ``n`` slices; True if the program finished instead."""
    hooks.budget = n
    try:
        jvm.run_to_completion()
    except _Paused:
        jvm.scheduler.release_current()
        return False
    return True


@pytest.fixture(scope="module")
def mutator_registry():
    return compile_program(MUTATOR)


@given(boundaries=st.lists(st.integers(min_value=1, max_value=5),
                           min_size=2, max_size=5),
       chunk_bytes=st.integers(min_value=16, max_value=512))
@settings(max_examples=12, deadline=None)
def test_delta_chain_composes_to_fresh_full(mutator_registry, boundaries,
                                            chunk_bytes):
    """The bounded-log invariant, state-level: a full snapshot plus any
    chain of delta checkpoints, each framed through the chunk wire
    format and composed in order, is *byte-identical* to a fresh full
    checkpoint captured at the same execution point — dirty-object
    tracking missed nothing, freed oids were dropped, and composition
    reproduced the heap walk exactly."""
    env = Environment()
    session = env.attach("delta-fuzz")
    try:
        jvm = JVM(mutator_registry, default_natives(), session)
        hooks = _PauseAfter()
        jvm.run_hooks = hooks
        jvm.bootstrap("Main", [])

        _run_slices(jvm, hooks, boundaries[0])
        se = SideEffectManager()
        basis = take_checkpoint(jvm, se, generation=7, sched_epoch=0)
        jvm.heap.advance_era()

        for seq, steps in enumerate(boundaries[1:], start=1):
            done = _run_slices(jvm, hooks, steps)
            delta = take_delta_checkpoint(
                jvm, se, generation=7, seq=seq, base_seq=seq - 1,
                sched_epoch=seq,
            )
            # The delta must survive its own chunk framing before it
            # may touch the basis.
            assembler = DeltaAssembler()
            reassembled = None
            for chunk in delta.to_chunks(chunk_bytes):
                got = assembler.feed(decode_record(encode(chunk)))
                if got is not None:
                    reassembled = got
            assert reassembled == delta

            basis = compose_delta(basis, reassembled)
            fresh = take_checkpoint(jvm, se, generation=7, sched_epoch=seq)
            assert basis.digest.diff(fresh.digest) == []
            assert basis.payload == fresh.payload
            jvm.heap.advance_era()
            if done:
                break
    finally:
        session.destroy()


def test_composed_checkpoint_restores_and_verifies(mutator_registry):
    """A composed snapshot passes the restore-time digest check — the
    adoption path's gate — and the restored machine finishes the
    program with the same output as an undisturbed run."""
    env = Environment()
    session = env.attach("origin")
    jvm = JVM(mutator_registry, default_natives(), session)
    hooks = _PauseAfter()
    jvm.run_hooks = hooks
    jvm.bootstrap("Main", [])

    _run_slices(jvm, hooks, 2)
    se = SideEffectManager()
    basis = take_checkpoint(jvm, se, generation=0)
    jvm.heap.advance_era()
    _run_slices(jvm, hooks, 3)
    delta = take_delta_checkpoint(jvm, se, generation=0, seq=1, base_seq=0)
    composed = compose_delta(basis, delta)

    scratch = env.attach("adopted")
    try:
        restored = restore_checkpoint(composed, mutator_registry,
                                      default_natives(), scratch,
                                      se_manager=SideEffectManager())
        result = restored.run_to_completion()
        assert result.ok
    finally:
        scratch.destroy()
    # The originating machine, left undisturbed, prints the same total.
    jvm.run_hooks = RunHooks()
    assert jvm.run_to_completion().ok
    lines = env.console.lines()
    assert len(lines) == 2 and lines[0] == lines[1]


def test_out_of_order_delta_is_refused(mutator_registry):
    """Composing a delta onto a basis it was not captured against must
    fail loudly: generation and base-seq checks are load-bearing."""
    env = Environment()
    session = env.attach("origin")
    jvm = JVM(mutator_registry, default_natives(), session)
    hooks = _PauseAfter()
    jvm.run_hooks = hooks
    jvm.bootstrap("Main", [])
    _run_slices(jvm, hooks, 2)
    se = SideEffectManager()
    basis = take_checkpoint(jvm, se, generation=3)
    jvm.heap.advance_era()
    _run_slices(jvm, hooks, 2)
    delta = take_delta_checkpoint(jvm, se, generation=4, seq=1, base_seq=0)
    with pytest.raises(ReplicationError, match="generation"):
        compose_delta(basis, delta)


def test_tampered_digest_is_not_adopted():
    """Verification on arrival: a checkpoint whose digest does not match
    the state it restores to must be refused, not adopted."""
    registry = compile_program(
        "class Main { static void main(String[] args) {} }")
    env = Environment()
    session = env.attach("origin")
    jvm = JVM(registry, default_natives(), session)
    jvm.bootstrap("Main", [])
    ckpt = take_checkpoint(jvm, SideEffectManager(), generation=0)
    name, value = ckpt.digest.components[0]
    forged = Checkpoint(0, StateDigest(
        ((name, value ^ 1),) + ckpt.digest.components[1:]), ckpt.payload)

    scratch = env.attach("victim")
    try:
        with pytest.raises(ReplicationError):
            restore_checkpoint(forged, registry, default_natives(), scratch)
    finally:
        scratch.destroy()

"""Round-trip fuzzing of the checkpoint wire format.

The chunk framing and the snapshot envelope must be exact inverses:
``Checkpoint -> to_chunks -> CheckpointAssembler -> Checkpoint`` is the
identity for any payload, any chunk size, any delivery order, and any
amount of duplication (retransmission after a torn transfer).  On top
of the framing, two structurally interesting snapshots round-trip
through a full restore: an (almost) empty heap right after bootstrap,
and a machine frozen mid-``wait()`` with a thread parked on a monitor.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.environment import Environment
from repro.errors import ReplicationError
from repro.minijava import compile_program
from repro.replication.checkpoint import (
    Checkpoint,
    CheckpointAssembler,
    CheckpointChunkRecord,
    restore_checkpoint,
    take_checkpoint,
)
from repro.replication.digest import StateDigest, compute_state_digest
from repro.replication.records import decode_record, encode
from repro.replication.sehandlers import SideEffectManager
from repro.runtime.jvm import JVM, RunHooks
from repro.runtime.stdlib import default_natives

digests = st.lists(
    st.tuples(st.text(min_size=1, max_size=12),
              st.integers(min_value=0, max_value=2**128 - 1)),
    max_size=4,
).map(lambda pairs: StateDigest(tuple(pairs)))


# ======================================================================
# Framing: encode/decode and chunk reassembly
# ======================================================================
@given(generation=st.integers(min_value=0, max_value=1000),
       digest=digests, payload=st.binary(max_size=600))
@settings(max_examples=60, deadline=None)
def test_checkpoint_encode_decode_roundtrip(generation, digest, payload):
    ckpt = Checkpoint(generation, digest, payload)
    assert Checkpoint.decode(ckpt.encode()) == ckpt


@given(generation=st.integers(min_value=0, max_value=50),
       payload=st.binary(max_size=600),
       chunk_bytes=st.integers(min_value=1, max_value=128),
       data=st.data())
@settings(max_examples=60, deadline=None)
def test_chunked_transfer_roundtrip_any_order(generation, payload,
                                              chunk_bytes, data):
    ckpt = Checkpoint(generation, StateDigest(()), payload)
    chunks = ckpt.to_chunks(chunk_bytes)
    # Each chunk survives the record wire format on its own.
    chunks = [decode_record(encode(c)) for c in chunks]
    order = data.draw(st.permutations(range(len(chunks))))

    assembler = CheckpointAssembler()
    for pos, index in enumerate(order):
        got = assembler.feed(chunks[index])
        if pos < len(order) - 1:
            assert got is None
            # Re-feeding an already-seen chunk (retransmission) is a
            # no-op and never completes the transfer early.
            assert assembler.feed(chunks[index]) is None
        else:
            assert got == ckpt
    # Post-completion duplicates are ignored too.
    assert assembler.feed(chunks[0]) is None


@given(payload=st.binary(min_size=80, max_size=300))
@settings(max_examples=20, deadline=None)
def test_inconsistent_chunk_total_is_rejected(payload):
    ckpt = Checkpoint(3, StateDigest(()), payload)
    chunks = ckpt.to_chunks(32)
    assert len(chunks) >= 2
    assembler = CheckpointAssembler()
    assembler.feed(chunks[0])
    forged = CheckpointChunkRecord(3, chunks[1].index,
                                   chunks[1].total + 1, chunks[1].data)
    with pytest.raises(ReplicationError):
        assembler.feed(forged)


# ======================================================================
# Full snapshots through a real restore
# ======================================================================
def _roundtrip(ckpt, registry, env):
    """Ship through chunks, reassemble, restore into a fresh session."""
    assembler = CheckpointAssembler()
    restored = None
    for chunk in ckpt.to_chunks(96):
        got = assembler.feed(decode_record(encode(chunk)))
        if got is not None:
            restored = got
    assert restored == ckpt
    session = env.attach("restore-fuzz")
    try:
        se = SideEffectManager()
        jvm = restore_checkpoint(restored, registry, default_natives(),
                                 session, se_manager=se)
        return compute_state_digest(jvm, include_env=False)
    finally:
        session.destroy()


def test_empty_heap_snapshot_roundtrips():
    registry = compile_program(
        "class Main { static void main(String[] args) {} }")
    env = Environment()
    session = env.attach("origin")
    jvm = JVM(registry, default_natives(), session)
    jvm.bootstrap("Main", [])
    ckpt = take_checkpoint(jvm, SideEffectManager(), generation=0)
    assert _roundtrip(ckpt, registry, env).diff(ckpt.digest) == []


def test_mid_monitor_wait_snapshot_roundtrips():
    """Freeze a machine while a thread is parked in ``wait()`` and
    round-trip it: waiter sets, monitor ownership, and the blocked
    thread's frame stack must all survive the wire."""
    registry = compile_program("""
        class Gate {
            synchronized void park() { this.wait(); }
            synchronized void release() { this.notify(); }
        }
        class Waiter extends Thread {
            Gate g;
            Waiter(Gate g) { this.g = g; }
            void run() { g.park(); }
        }
        class Main {
            static void main(String[] args) {
                Gate g = new Gate();
                Waiter w = new Waiter(g);
                w.start();
                while (!w.isAlive()) { Thread.yield(); }
                Thread.sleep(50);
                g.release();
                w.join();
                System.println("released");
            }
        }
    """)

    class _Pause(Exception):
        pass

    class PauseOnWait(RunHooks):
        def on_slice_end(self, jvm, thread, reason):
            if any(t.state.name == "WAITING"
                   for t in jvm.scheduler.threads):
                raise _Pause()

    env = Environment()
    session = env.attach("origin")
    jvm = JVM(registry, default_natives(), session)
    jvm.run_hooks = PauseOnWait()
    jvm.bootstrap("Main", [])
    with pytest.raises(_Pause):
        jvm.run_to_completion()
    jvm.scheduler.release_current()

    assert any(t.state.name == "WAITING" for t in jvm.scheduler.threads)
    ckpt = take_checkpoint(jvm, SideEffectManager(), generation=1)
    assert _roundtrip(ckpt, registry, env).diff(ckpt.digest) == []


def test_tampered_digest_is_not_adopted():
    """Verification on arrival: a checkpoint whose digest does not match
    the state it restores to must be refused, not adopted."""
    registry = compile_program(
        "class Main { static void main(String[] args) {} }")
    env = Environment()
    session = env.attach("origin")
    jvm = JVM(registry, default_natives(), session)
    jvm.bootstrap("Main", [])
    ckpt = take_checkpoint(jvm, SideEffectManager(), generation=0)
    name, value = ckpt.digest.components[0]
    forged = Checkpoint(0, StateDigest(
        ((name, value ^ 1),) + ckpt.digest.components[1:]), ckpt.payload)

    scratch = env.attach("victim")
    try:
        with pytest.raises(ReplicationError):
            restore_checkpoint(forged, registry, default_natives(), scratch)
    finally:
        scratch.destroy()

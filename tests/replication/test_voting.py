"""Quorum-voted digests: the Byzantine acceptance scenarios.

A 3-member voting group must (a) be a no-op for honest runs — output
and final state byte-identical to the unreplicated reference; (b)
outvote, quarantine, and re-arm a lying primary (corrupted digest and
corrupted output payload, separately) without losing exactly-once
outputs; (c) quarantine a bit-flipped follower without disturbing the
run; (d) under the step+slice multi-variant guard, stay silent on
honest runs and alarm on injected divergence.
"""

import pytest

from repro.env.environment import Environment
from repro.errors import (
    AlreadyRanError,
    ReplicationError,
    VariantDivergenceError,
)
from repro.minijava import compile_program
from repro.replication.config import ReplicationConfig
from repro.replication.digest import compute_state_digest
from repro.replication.machine import run_unreplicated
from repro.replication.supervisor import MemberState, default_generation_settings
from repro.replication.voting import VotingGroup

OUTPUT_PROGRAM = """
class Main {
    static void main(String[] args) {
        int fd = Files.open("out.txt", "w");
        for (int i = 0; i < 4; i++) {
            Files.writeLine(fd, "line " + i);
        }
        Files.close(fd);
        System.println("wrote 4 lines");
    }
}
"""

MULTI_PROGRAM = """
    class W extends Thread {
        static Object lock = new Object();
        static int shared;
        void run() {
            for (int i = 0; i < 60; i++) {
                synchronized (lock) { shared = shared + 1; }
            }
        }
    }
    class Main {
        static void main(String[] args) {
            W a = new W(); W b = new W();
            a.start(); b.start(); a.join(); b.join();
            System.println(W.shared);
        }
    }
"""


@pytest.fixture(scope="module")
def output_registry():
    return compile_program(OUTPUT_PROGRAM)


@pytest.fixture(scope="module")
def multi_registry():
    return compile_program(MULTI_PROGRAM)


def _reference(registry):
    env = Environment()
    result, jvm = run_unreplicated(
        registry, "Main", env=env, settings=default_generation_settings(0)
    )
    assert result.ok
    return env.snapshot_stable(), compute_state_digest(jvm, env)


@pytest.fixture(scope="module")
def output_reference(output_registry):
    return _reference(output_registry)


@pytest.fixture(scope="module")
def multi_reference(multi_registry):
    return _reference(multi_registry)


def _config(**overrides):
    overrides.setdefault("strategy", "thread_sched")
    overrides.setdefault("batch_records", 1)
    overrides.setdefault("digest_interval", 2)
    return ReplicationConfig(voting=True, **overrides)


def _assert_matches_reference(env, voting_result, reference):
    ref_stable, ref_digest = reference
    assert voting_result.result.ok
    assert env.snapshot_stable() == ref_stable
    final = compute_state_digest(voting_result.final_jvm, env)
    assert final.components == ref_digest.components


# ======================================================================
# Honest runs
# ======================================================================
def test_honest_group_matches_reference(output_registry, output_reference):
    env = Environment()
    group = VotingGroup(output_registry, env=env, config=_config())
    result = group.run("Main")
    assert result.outcome == "completed"
    assert result.incidents == []
    assert result.final_era == 0
    _assert_matches_reference(env, result, output_reference)
    # Every output went through the gate with a certificate behind it.
    assert result.metrics.outputs_gated >= 6     # 4 writes + open + close...
    assert result.metrics.quorum_certs > 0
    assert result.metrics.votes_cast >= 3 * result.metrics.quorum_certs \
        - result.metrics.votes_cast  # at least quorum-many votes happened
    for slot in result.members:
        assert slot.state == MemberState.HEALTHY


def test_honest_multithreaded_digests_certified(multi_registry,
                                                multi_reference):
    env = Environment()
    group = VotingGroup(multi_registry, env=env, config=_config())
    result = group.run("Main")
    assert result.outcome == "completed"
    assert result.incidents == []
    _assert_matches_reference(env, result, multi_reference)
    # Periodic digests were proposed and certified by all three members.
    assert result.metrics.quorum_certs > 2
    assert result.metrics.vote_bytes > 0


# ======================================================================
# Lying primary
# ======================================================================
def test_lying_primary_digest_is_deposed_and_rearmed(multi_registry,
                                                     multi_reference):
    env = Environment()
    group = VotingGroup(multi_registry, env=env, config=_config(
        lie_at=("digest", 2), lie_member=0,
    ))
    result = group.run("Main")
    assert result.outcome in ("completed", "completed_in_recovery")
    _assert_matches_reference(env, result, multi_reference)
    # Exactly one incident: member 0, the deposed proposer.
    assert [i.member for i in result.incidents] == [0]
    incident = result.incidents[0]
    assert incident.role == "proposer"
    assert incident.era == 0
    assert result.final_era >= 1
    assert result.metrics.members_quarantined == 1
    if result.outcome == "completed":
        # The liar was re-armed into era 1 as a follower.
        assert incident.rearmed and incident.rearmed_era == 1
        assert result.metrics.members_rearmed == 1
        assert result.members[0].state == MemberState.HEALTHY
        assert result.members[0].rearms == 1


def test_lying_primary_output_is_outvoted_before_release(output_registry,
                                                         output_reference):
    env = Environment()
    group = VotingGroup(output_registry, env=env, config=_config(
        lie_at=("output", 2), lie_member=0,
    ))
    result = group.run("Main")
    assert result.outcome in ("completed", "completed_in_recovery")
    # The corrupted payload never reached the environment and the
    # uncertain output was re-executed exactly once with honest args.
    _assert_matches_reference(env, result, output_reference)
    assert [i.member for i in result.incidents] == [0]
    assert result.incidents[0].subject == "output"
    assert group.injector.fired  # the lie actually happened


# ======================================================================
# Lying follower
# ======================================================================
def test_lying_follower_is_quarantined_not_the_run(multi_registry,
                                                   multi_reference):
    env = Environment()
    group = VotingGroup(multi_registry, env=env, config=_config(
        lie_at=("digest", 2), lie_member=1,
    ))
    result = group.run("Main")
    assert result.outcome == "completed"
    assert result.final_era == 0          # no deposition
    _assert_matches_reference(env, result, multi_reference)
    assert [i.member for i in result.incidents] == [1]
    incident = result.incidents[0]
    assert incident.role == "follower"
    assert result.metrics.members_quarantined == 1
    if incident.rearmed:
        assert result.metrics.members_rearmed == 1
        assert result.members[1].state == MemberState.HEALTHY


def test_lying_follower_output_vote(output_registry, output_reference):
    env = Environment()
    group = VotingGroup(output_registry, env=env, config=_config(
        lie_at=("output", 1), lie_member=2,
    ))
    result = group.run("Main")
    assert result.outcome == "completed"
    _assert_matches_reference(env, result, output_reference)
    assert [i.member for i in result.incidents] == [2]


# ======================================================================
# Multi-variant execution guard
# ======================================================================
def test_variants_silent_on_honest_run(multi_registry, multi_reference):
    env = Environment()
    group = VotingGroup(multi_registry, env=env, config=_config(
        variants="step+slice",
    ))
    result = group.run("Main")
    assert result.outcome == "completed"
    assert result.divergences == []
    assert result.metrics.variant_divergences == 0
    _assert_matches_reference(env, result, multi_reference)
    # The members really ran on alternating engines.
    engines = [slot.engine for slot in result.members]
    assert len(set(engines)) == 2


def test_variants_alarm_on_injected_divergence(multi_registry):
    env = Environment()
    group = VotingGroup(multi_registry, env=env, config=_config(
        variants="step+slice", lie_at=("digest", 2), lie_member=1,
    ))
    result = group.run("Main")
    assert result.outcome == "completed"
    assert result.metrics.variant_divergences == 1
    divergence = result.divergences[0]
    assert divergence.member == 1
    assert divergence.engine == result.members[1].engine
    assert divergence.engine not in divergence.majority_engines


def test_variants_fail_stop_raises(multi_registry):
    env = Environment()
    group = VotingGroup(multi_registry, env=env, config=_config(
        variants="step+slice", variant_fail_stop=True,
        lie_at=("digest", 2), lie_member=1,
    ))
    with pytest.raises(VariantDivergenceError) as exc:
        group.run("Main")
    assert exc.value.divergence.member == 1


# ======================================================================
# Config validation and misc
# ======================================================================
def test_voting_requires_lockstep_strategy(output_registry):
    with pytest.raises(ReplicationError):
        VotingGroup(output_registry,
                    config=ReplicationConfig(voting=True,
                                             strategy="lock_sync"))


def test_voting_rejects_even_groups(output_registry):
    with pytest.raises(ReplicationError):
        VotingGroup(output_registry, config=_config(n_members=4))


def test_voting_rejects_crash_injection(output_registry):
    with pytest.raises(ReplicationError):
        VotingGroup(output_registry, config=_config(crash_at=3))


def test_single_shot(output_registry):
    env = Environment()
    group = VotingGroup(output_registry, env=env, config=_config())
    assert group.run("Main").result.ok
    with pytest.raises(AlreadyRanError):
        group.run("Main")


def test_degenerate_single_member_group(output_registry, output_reference):
    """f = 0: one member certifies its own proposals (quorum of one)."""
    env = Environment()
    group = VotingGroup(output_registry, env=env,
                        config=_config(n_members=1))
    result = group.run("Main")
    assert result.outcome == "completed"
    _assert_matches_reference(env, result, output_reference)


def test_voting_rejects_hot_backup(output_registry):
    with pytest.raises(ReplicationError):
        VotingGroup(output_registry, config=_config(hot_backup=True))


def test_fault_budget_rejects_too_many_liars(output_registry):
    """Two distinct liars is f+1 at n=3: the seeded fault exceeds what
    the quorum can mask, so the config is rejected up front."""
    with pytest.raises(ReplicationError):
        VotingGroup(output_registry, config=_config(
            lie_at=("output", 1), lie_member=0,
            lie_specs=((("output", 2), 1),),
        ))


# ======================================================================
# Two simultaneous liars (f = 2)
# ======================================================================
def test_dual_liars_both_convicted_at_n5(multi_registry, multi_reference):
    """n = 5 masks two simultaneous liars: the lying proposer is
    deposed and the lying follower quarantined, in one run, with the
    output still matching the serial reference."""
    env = Environment()
    group = VotingGroup(multi_registry, env=env, config=_config(
        n_members=5,
        lie_at=("digest", 2), lie_member=0,
        lie_specs=((("digest", 2), 1),),
    ))
    result = group.run("Main")
    assert result.outcome in ("completed", "completed_in_recovery")
    _assert_matches_reference(env, result, multi_reference)
    assert sorted(i.member for i in result.incidents) == [0, 1]
    assert result.metrics.members_quarantined == 2
    assert len(group.injector.fired) == 2


def test_dual_follower_liars_no_deposition(output_registry,
                                           output_reference):
    env = Environment()
    group = VotingGroup(output_registry, env=env, config=_config(
        n_members=5,
        lie_at=("output", 1), lie_member=1,
        lie_specs=((("output", 2), 3),),
    ))
    result = group.run("Main")
    assert result.outcome == "completed"
    assert result.final_era == 0          # the proposer stayed honest
    _assert_matches_reference(env, result, output_reference)
    assert sorted(i.member for i in result.incidents) == [1, 3]


# ======================================================================
# Engine demotion
# ======================================================================
def test_requested_demotion_lands_at_a_safe_point(multi_registry,
                                                  multi_reference):
    """A pending demotion rebuilds every member onto the target engine
    at the next replayable boundary and the run completes there."""
    env = Environment()
    group = VotingGroup(multi_registry, env=env, config=_config())
    assert group.base_config.engine == "slice"
    group.request_demotion("step")
    result = group.run("Main")
    assert result.outcome == "completed"
    _assert_matches_reference(env, result, multi_reference)
    assert group.base_config.engine == "step"
    assert all(slot.engine == "step" for slot in group.slots)
    assert group.metrics.engine_demotions == 1
    assert group.demotions and group.demotions[0][1] == "step"


def test_demotion_to_current_engine_is_a_noop(multi_registry,
                                              multi_reference):
    env = Environment()
    group = VotingGroup(multi_registry, env=env, config=_config())
    group.request_demotion("slice")
    result = group.run("Main")
    assert result.outcome == "completed"
    _assert_matches_reference(env, result, multi_reference)
    assert group.metrics.engine_demotions == 0
    assert group.demotions == []


def test_demotion_rejects_unknown_engine(multi_registry):
    group = VotingGroup(multi_registry, config=_config())
    with pytest.raises(ReplicationError):
        group.request_demotion("turbo")


def test_on_divergence_hook_fires_before_demotion_policy(multi_registry):
    """The hook a fleet's DegradationController subscribes to: every
    confirmed VariantDivergence is pushed to it as it is ruled."""
    env = Environment()
    group = VotingGroup(multi_registry, env=env, config=_config(
        variants="step+slice", lie_at=("digest", 2), lie_member=1,
    ))
    seen = []
    group.on_divergence = seen.append
    result = group.run("Main")
    assert result.outcome == "completed"
    assert len(seen) == 1
    assert seen[0] is result.divergences[0]

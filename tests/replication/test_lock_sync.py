"""Replicated lock synchronization: unit-level admission scenarios."""

import pytest

from repro.errors import RecoveryError
from repro.replication.lock_sync import BackupLockSync, PrimaryLockSync
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import IdMap, LockAcqRecord
from repro.runtime.monitors import Monitor
from repro.runtime.threads import JavaThread


def _thread(vid, t_asn=0):
    t = JavaThread(vid, None)
    t.t_asn = t_asn
    return t


class _Sink:
    def __init__(self):
        self.records = []

    def log(self, record):
        self.records.append(record)


def test_primary_assigns_lock_ids_and_logs():
    sink = _Sink()
    metrics = ReplicationMetrics()
    admission = PrimaryLockSync(sink, metrics)
    t = _thread((0,))
    m = Monitor()

    # Simulate what SyncManager does on acquisition.
    m.l_asn += 1
    t.t_asn += 1
    admission.on_acquired(t, m)

    assert m.l_id == 1
    assert sink.records[0] == IdMap(1, (0,), 1)
    assert sink.records[1] == LockAcqRecord((0,), 1, 1, 1)
    assert metrics.id_maps == 1
    assert metrics.lock_records == 1


def test_primary_reuses_lock_id_on_later_acquisitions():
    sink = _Sink()
    admission = PrimaryLockSync(sink, ReplicationMetrics())
    t = _thread((0,))
    m = Monitor()
    for _ in range(3):
        m.l_asn += 1
        t.t_asn += 1
        admission.on_acquired(t, m)
    assert m.l_id == 1
    id_maps = [r for r in sink.records if isinstance(r, IdMap)]
    assert len(id_maps) == 1


def test_system_threads_not_replicated():
    sink = _Sink()
    admission = PrimaryLockSync(sink, ReplicationMetrics())
    t = JavaThread((-1,), None, is_system=True)
    admission.on_acquired(t, Monitor())
    assert sink.records == []


def test_backup_enforces_l_asn_turns():
    # Log: thread A acquires lock 1 first, then thread B.
    maps = [IdMap(1, (0,), 1)]
    acqs = [LockAcqRecord((0,), 1, 1, 1), LockAcqRecord((0, 0), 1, 1, 2)]
    backup = BackupLockSync(maps, acqs, ReplicationMetrics())
    a, b = _thread((0,)), _thread((0, 0))
    m = Monitor()

    # B is not allowed before A.
    assert backup.may_acquire(b, m) is False
    assert backup.may_acquire(a, m) is True

    m.l_asn += 1
    a.t_asn += 1
    backup.on_acquired(a, m)
    assert m.l_id == 1

    # Now it is B's turn.
    assert backup.may_acquire(b, m) is True
    m.l_asn += 1
    b.t_asn += 1
    backup.on_acquired(b, m)
    assert not backup.in_recovery


def test_backup_unlogged_acquisition_waits_for_drain():
    maps = [IdMap(1, (0,), 1)]
    acqs = [LockAcqRecord((0,), 1, 1, 1)]
    backup = BackupLockSync(maps, acqs, ReplicationMetrics())
    a = _thread((0,))
    stranger = _thread((0, 0))
    m = Monitor()

    # The stranger's acquisition is not in the log: it must wait.
    assert backup.may_acquire(stranger, m) is False

    m.l_asn += 1
    a.t_asn += 1
    assert backup.may_acquire(a, m) or True  # a's turn was checked above
    backup.on_acquired(a, m)

    # Recovery over: everyone may proceed.
    assert backup.may_acquire(stranger, m) is True


def test_backup_fresh_lock_after_drain_gets_new_id():
    backup = BackupLockSync(
        [IdMap(5, (0,), 1)], [LockAcqRecord((0,), 1, 5, 1)],
        ReplicationMetrics(),
    )
    a = _thread((0,))
    m1 = Monitor()
    m1.l_asn += 1
    a.t_asn += 1
    backup.on_acquired(a, m1)
    assert m1.l_id == 5

    # Post-recovery lock gets an id above the logged maximum.
    m2 = Monitor()
    m2.l_asn += 1
    a.t_asn += 1
    backup.on_acquired(a, m2)
    assert m2.l_id == 6


def test_backup_detects_wrong_lock_identity():
    maps = [IdMap(1, (0,), 1), IdMap(2, (0, 0), 1)]
    acqs = [LockAcqRecord((0,), 1, 1, 1), LockAcqRecord((0, 0), 1, 2, 1)]
    backup = BackupLockSync(maps, acqs, ReplicationMetrics())
    a = _thread((0,))
    m = Monitor()
    m.l_id = 2  # wrong: the log says thread (0,) acquires lock 1
    with pytest.raises(RecoveryError):
        backup.may_acquire(a, m)


def test_backup_duplicate_key_rejected():
    acqs = [LockAcqRecord((0,), 1, 1, 1), LockAcqRecord((0,), 1, 1, 2)]
    with pytest.raises(RecoveryError, match="duplicate"):
        BackupLockSync([], acqs, ReplicationMetrics())


def test_backup_unknown_lock_waits_while_maps_remain():
    """Paper case (ii): a lock with no id yet, whose map belongs to a
    different thread — the acquirer parks until the assigner runs."""
    maps = [IdMap(1, (0,), 1)]
    acqs = [
        LockAcqRecord((0,), 1, 1, 1),
        LockAcqRecord((0, 0), 1, 1, 2),
    ]
    backup = BackupLockSync(maps, acqs, ReplicationMetrics())
    b = _thread((0, 0))
    m = Monitor()  # l_id is None, map belongs to thread (0,)
    assert backup.may_acquire(b, m) is False

"""ReplicatedJVM facade: configuration, custom handlers, edge cases."""

import pytest

from repro.env.environment import Environment
from repro.errors import AlreadyRanError, ReplicationError
from repro.minijava import compile_program
from repro.replication.machine import (
    ReplicaSettings,
    ReplicatedJVM,
    parse_log,
)
from repro.replication.records import IdMap, encode
from repro.replication.sehandlers import SideEffectHandler
from repro.runtime.natives import NativeSpec
from repro.runtime.stdlib import build_natives

TRIVIAL = "class Main { static void main(String[] args) { } }"


def test_unknown_strategy_rejected():
    with pytest.raises(ReplicationError, match="unknown strategy"):
        ReplicatedJVM(compile_program(TRIVIAL), strategy="quantum")


def test_parse_log_partitions_by_kind():
    parsed = parse_log([encode(IdMap(1, (0,), 1))])
    assert parsed.total == 1
    assert parsed.id_maps == [IdMap(1, (0,), 1)]
    assert parsed.lock_acqs == []


def test_failover_with_empty_log_is_a_fresh_run():
    """Crash before anything was flushed: the backup starts from the
    initial state and simply runs the program."""
    source = """
        class Main {
            static void main(String[] args) { System.println("once"); }
        }
    """
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env, crash_at=1)
    result = machine.run("Main")
    assert result.failed_over
    assert env.console.lines() == ["once"]
    assert machine.backup_metrics.records_replayed == 0


def test_replica_settings_are_visible_per_session():
    env = Environment()
    machine = ReplicatedJVM(
        compile_program(TRIVIAL), env=env,
        primary=ReplicaSettings(1, 0, 10),
        backup=ReplicaSettings(2, 999, 20),
        crash_at=None,
    )
    machine.run("Main")
    assert machine.primary_jvm.config.scheduler_seed == 1
    machine.replay_backup("Main")
    assert machine.backup_jvm.config.scheduler_seed == 2


def test_detector_timeout_configurable():
    env = Environment()
    source = """
        class Main {
            static void main(String[] args) { System.println("x"); }
        }
    """
    machine = ReplicatedJVM(compile_program(source), env=env,
                            crash_at=1, detector_timeout=7)
    result = machine.run("Main")
    assert result.detection_intervals == 7


def test_custom_application_side_effect_handler():
    """The paper: 'Applications can incorporate their own handlers
    using the same functions.'  A custom native with a custom handler
    participates in exactly-once recovery."""

    class BeepHandler(SideEffectHandler):
        name = "beeper"

        def log(self, session, spec, receiver, args, outcome):
            return {"op": "beep", "count": args[0]}

        def receive(self, state, payload):
            state["beeps"] = state.get("beeps", 0) + payload["count"]

        def test(self, env, state, spec, args):
            # Beeps are written to a file named beeps.txt, one '!' each.
            expected = state.get("beeps", 0) + args[0]
            return (env.fs.exists("beeps.txt")
                    and len(env.fs.contents("beeps.txt")) >= expected)

    def beep_impl(ctx, receiver, args):
        session = ctx.output_target()
        current = (session.env.fs.contents("beeps.txt")
                   if session.env.fs.exists("beeps.txt") else "")
        session.env.fs.put("beeps.txt", current + "!" * args[0])
        return None

    natives = build_natives()
    natives.register(NativeSpec(
        "Beeper.beep/1", beep_impl,
        is_output=True, testable=True, se_handler="beeper",
    ))

    from repro.minijava.extensions import NativeClassSpec, NativeMethodSpec

    source = """
        class Main {
            static void main(String[] args) {
                Beeper.beep(3);
                Beeper.beep(2);
            }
        }
    """
    beeper_class = NativeClassSpec("Beeper", methods=(
        NativeMethodSpec("beep", ("int",), "void"),
    ))

    def build_registry():
        return compile_program(source, native_classes=[beeper_class])

    # Sweep all crash points: beeps land exactly once.
    env0 = Environment()
    m0 = ReplicatedJVM(build_registry(), natives=natives, env=env0,
                       se_handlers=[BeepHandler()])
    m0.run("Main")
    assert env0.fs.contents("beeps.txt") == "!" * 5
    events = m0.shipper.injector.events

    for crash_at in range(1, events + 1):
        env = Environment()
        machine = ReplicatedJVM(build_registry(), natives=natives, env=env,
                                se_handlers=[BeepHandler()],
                                crash_at=crash_at)
        result = machine.run("Main")
        assert result.final_result.ok, crash_at
        assert env.fs.contents("beeps.txt") == "!" * 5, crash_at


# ======================================================================
# Lifecycle: one machine, one run; clone() for the next one
# ======================================================================
PRINTER = """
class Main {
    static void main(String[] args) {
        for (int i = 0; i < 3; i++) { System.println("n=" + i); }
    }
}
"""


def test_second_run_raises_already_ran():
    machine = ReplicatedJVM(compile_program(PRINTER), env=Environment())
    machine.run("Main")
    with pytest.raises(AlreadyRanError, match="clone"):
        machine.run("Main")


def test_already_ran_is_a_replication_error():
    assert issubclass(AlreadyRanError, ReplicationError)


def test_clone_is_fresh_and_runnable():
    machine = ReplicatedJVM(compile_program(PRINTER), env=Environment())
    first = machine.run("Main")
    clone = machine.clone()
    second = clone.run("Main")
    assert second.outcome == first.outcome
    assert clone.env is not machine.env
    assert clone.env.console.lines() == machine.env.console.lines()
    assert clone.strategy == machine.strategy


def test_clone_overrides_selected_knobs():
    machine = ReplicatedJVM(compile_program(PRINTER), env=Environment(),
                            crash_at=None, detector_timeout=3)
    machine.run("Main")
    clone = machine.clone(crash_at=2, detector_timeout=5)
    result = clone.run("Main")
    assert result.failed_over
    assert result.detection_intervals == 5
    assert clone.env.console.lines() == machine.env.console.lines()
    # Untouched knobs carry over.
    later = machine.clone()
    assert later.crash_at is None


def test_clone_before_run_is_allowed():
    machine = ReplicatedJVM(compile_program(PRINTER), env=Environment())
    clone = machine.clone(crash_at=1)
    assert clone.run("Main").failed_over
    assert machine.run("Main").outcome == "primary_completed"

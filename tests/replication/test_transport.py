"""Transport layer: in-memory equivalence, fault injection, framing.

The load-bearing property: whatever the fault profile, the backup's
delivered log is always a *contiguous prefix* of the record stream the
primary flushed — and with retries allowed to finish (settle), it is
the whole stream.  Output commit's safety rests on this plus real acks.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.env.channel import Channel
from repro.errors import TransportError
from repro.replication.transport import (
    FAULT_PROFILES,
    FaultProfile,
    FaultyTransport,
    InMemoryTransport,
    make_transport,
)


# ======================================================================
# In-memory transport: the original channel model, bit for bit
# ======================================================================
def test_in_memory_transport_delivers_instantly():
    t = InMemoryTransport()
    t.send([b"a", b"b"])
    assert t.delivered == [b"a", b"b"]
    assert t.wait_ack() == 0.0
    assert t.stats.retransmits == 0
    assert t.stats.ack_wait_time == 0.0


def test_default_channel_uses_in_memory_transport():
    ch = Channel()
    assert isinstance(ch.transport, InMemoryTransport)
    ch.send_record(b"x")
    ch.flush()
    assert ch.delivered == [b"x"]


def test_channel_counters_identical_across_transports():
    """Wire counters live in the Channel and count accepted messages,
    so they are transport-invariant (the Table 2 economics don't change
    when the link degrades — only the fault counters do)."""
    payloads = [bytes([i]) * (i + 1) for i in range(10)]

    def run(transport):
        ch = Channel(batch_records=3, transport=transport)
        for p in payloads:
            ch.send_record(p)
        ch.flush_and_wait_ack()
        return (ch.messages_sent, ch.records_sent, ch.bytes_sent,
                ch.acks_received)

    mem = run(InMemoryTransport())
    faulty = run(FaultyTransport(FAULT_PROFILES["lossy"], seed=5))
    assert mem == faulty


def test_heartbeats_bypass_wire_counters():
    ch = Channel()
    ch.heartbeat()
    ch.heartbeat()
    assert ch.messages_sent == 0
    assert ch.transport.stats.heartbeats_sent == 2
    assert ch.transport.stats.heartbeats_delivered == 2


# ======================================================================
# Fault injection
# ======================================================================
def test_faulty_transport_is_deterministic():
    def run():
        t = FaultyTransport(FAULT_PROFILES["chaotic"], seed=99)
        for i in range(30):
            t.send([bytes([i])])
            if i % 5 == 4:
                t.wait_ack()
        t.settle()
        return list(t.delivered), vars(t.stats).copy()

    first = run()
    second = run()
    assert first == second


def test_drops_force_retransmission():
    t = FaultyTransport(FaultProfile(drop_rate=0.5, latency=2.0), seed=3)
    for i in range(20):
        t.send([bytes([i])])
    t.wait_ack()
    assert t.delivered == [bytes([i]) for i in range(20)]
    assert t.stats.retransmits > 0
    assert t.stats.messages_dropped > 0


def test_dead_link_raises_after_max_retries():
    t = FaultyTransport(
        FaultProfile(drop_rate=1.0, max_retries=2, retry_timeout=4.0), seed=1
    )
    t.send([b"x"])
    with pytest.raises(TransportError, match="retries"):
        t.wait_ack()


def test_bounded_window_exerts_backpressure():
    t = FaultyTransport(
        FaultProfile(window=2, latency=50.0, retry_timeout=500.0), seed=7
    )
    for i in range(8):
        t.send([bytes([i])])
    assert t.stats.backpressure_stalls > 0
    t.settle()
    assert t.delivered == [bytes([i]) for i in range(8)]


def test_reordering_never_reorders_the_log():
    t = FaultyTransport(FAULT_PROFILES["jittery"], seed=11)
    sent = [bytes([i]) for i in range(40)]
    for record in sent:
        t.send([record])
    t.settle()
    assert t.delivered == sent
    assert t.stats.messages_reordered > 0


def test_crash_delivers_in_flight_prefix_only():
    """At fail-stop, in-flight messages may still land, but a dropped
    message is a wall: nothing after it enters the log."""
    t = FaultyTransport(FaultProfile(drop_rate=0.4, latency=3.0), seed=13)
    sent = [bytes([i]) for i in range(30)]
    for record in sent:
        t.send([record])
    t.crash_sender()
    assert t.delivered == sent[:len(t.delivered)]
    assert len(t.delivered) < len(sent)   # seed 13 drops something
    # Post-crash sends are ignored (the sender is dead).
    t.send([b"zombie"])
    assert b"zombie" not in t.delivered


def test_heartbeats_can_be_lost():
    t = FaultyTransport(FaultProfile(drop_rate=1.0), seed=2)
    for _ in range(5):
        t.send_heartbeat()
    assert t.stats.heartbeats_sent == 5
    assert t.stats.heartbeats_delivered == 0


def test_fresh_reproduces_configuration():
    t = FaultyTransport(FAULT_PROFILES["lossy"], seed=42)
    t.send([b"x"])
    t.wait_ack()
    clone = t.fresh()
    assert clone.profile == t.profile
    assert clone.seed == t.seed
    assert clone.delivered == []


def test_make_transport_specs():
    assert isinstance(make_transport(None), InMemoryTransport)
    assert isinstance(make_transport("memory"), InMemoryTransport)
    faulty = make_transport("chaotic")
    assert isinstance(faulty, FaultyTransport)
    assert faulty.profile.name == "chaotic"
    passthrough = InMemoryTransport()
    assert make_transport(passthrough) is passthrough
    assert isinstance(make_transport(InMemoryTransport), InMemoryTransport)
    with pytest.raises(TransportError, match="unknown transport"):
        make_transport("carrier-pigeon")


# ======================================================================
# The prefix property, property-based
# ======================================================================
@settings(deadline=None, max_examples=60)
@given(
    records=st.lists(st.binary(min_size=1, max_size=6), min_size=1,
                     max_size=40),
    seed=st.integers(min_value=0, max_value=2**16),
    drop=st.floats(min_value=0.0, max_value=0.45),
    dup=st.floats(min_value=0.0, max_value=0.45),
    reorder=st.floats(min_value=0.0, max_value=0.5),
    commit_every=st.integers(min_value=1, max_value=7),
    crash=st.booleans(),
)
def test_any_profile_preserves_prefix_semantics(records, seed, drop, dup,
                                                reorder, commit_every,
                                                crash):
    """For any seeded drop/reorder/dup profile with retries enabled,
    the delivered log is a prefix of what the in-memory transport
    delivers — and the full log once the sender settles."""
    profile = FaultProfile(drop_rate=drop, dup_rate=dup,
                           reorder_rate=reorder, jitter=3.0,
                           retry_timeout=30.0, max_retries=40)
    mem = InMemoryTransport()
    faulty = FaultyTransport(profile, seed=seed)
    for i, record in enumerate(records):
        mem.send([record])
        faulty.send([record])
        if (i + 1) % commit_every == 0:
            faulty.wait_ack()
        assert faulty.delivered == mem.delivered[:len(faulty.delivered)]
    if crash:
        faulty.crash_sender()
        assert faulty.delivered == mem.delivered[:len(faulty.delivered)]
    else:
        faulty.settle()
        assert faulty.delivered == mem.delivered


@settings(deadline=None, max_examples=30)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    batch=st.integers(min_value=1, max_value=9),
    profile=st.sampled_from(sorted(FAULT_PROFILES)),
)
def test_channel_over_faulty_transport_matches_in_memory(seed, batch,
                                                         profile):
    """Same records, same batching: after settle, a faulty channel's
    backup log is byte-identical to the in-memory channel's."""
    payloads = [bytes([i, i]) for i in range(25)]
    mem_ch = Channel(batch_records=batch)
    faulty_ch = Channel(
        batch_records=batch,
        transport=FaultyTransport(FAULT_PROFILES[profile], seed=seed),
    )
    for p in payloads:
        mem_ch.send_record(p)
        faulty_ch.send_record(p)
    mem_ch.settle()
    faulty_ch.settle()
    assert faulty_ch.backup_log() == mem_ch.backup_log()

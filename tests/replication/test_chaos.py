"""Seeded chaos on the wire: partitions, flaps, asymmetric links.

:class:`ChaosTransport` layers *scheduled* faults over the seeded
lossy-link model: whole-link outages (symmetric or per-direction),
flapping links, per-direction delay overrides, and member-level
partitions published to the voting layer.  The properties under test:

* schedules are plain data — invalid windows are rejected eagerly and
  equal (seed, schedule) pairs misbehave identically;
* an outage suppresses traffic for exactly its window and the backlog
  arrives at the heal — outage-cut transmissions never consume retry
  attempts, so a partition is *down*, not dead;
* the asymmetric ``rev`` cut (data flows, acks vanish) stalls the
  sender's commit point without touching delivery — the case a
  fail-stop model cannot express;
* the per-group contiguous-prefix rule survives a partition + heal
  even when the chaotic link shares a mux with healthy ones.
"""

import pytest

from repro.errors import TransportError
from repro.replication.transport import (
    FAULT_PROFILES,
    ChaosTransport,
    FaultProfile,
    FaultyTransport,
    LinkOutage,
    MemberPartition,
    TransportMux,
    link_flaps,
)


def _batches(tag, n):
    return [[f"{tag}{i}".encode()] for i in range(n)]


def _flat(batches):
    return [rec for batch in batches for rec in batch]


# ======================================================================
# Schedules are validated plain data
# ======================================================================
def test_outage_rejects_bad_direction_and_empty_window():
    with pytest.raises(TransportError):
        LinkOutage(0.0, 10.0, "sideways")
    with pytest.raises(TransportError):
        LinkOutage(10.0, 10.0)


def test_member_partition_rejects_bad_unit_and_empty_window():
    with pytest.raises(TransportError):
        MemberPartition(1, 0.0, 5.0, "bytes")
    with pytest.raises(TransportError):
        MemberPartition(1, 5.0, 5.0)


def test_link_flaps_lays_out_the_windows():
    flaps = link_flaps(100.0, 3, down=50.0, up=25.0, direction="fwd")
    assert [(o.start, o.end, o.direction) for o in flaps] == [
        (100.0, 150.0, "fwd"), (175.0, 225.0, "fwd"), (250.0, 300.0, "fwd"),
    ]
    with pytest.raises(TransportError):
        link_flaps(0.0, 0, down=5.0, up=5.0)
    with pytest.raises(TransportError):
        link_flaps(0.0, 2, down=0.0, up=5.0)


def test_fresh_reproduces_the_chaos_schedule():
    t = ChaosTransport(
        FaultProfile(latency=3.0), seed=77,
        outages=(LinkOutage(10.0, 20.0, "rev"),),
        member_partitions=(MemberPartition(2, 5.0, 9.0, "time"),),
        fwd_latency=1.0, rev_jitter=2.0,
    )
    clone = t.fresh()
    assert clone.outages == t.outages
    assert clone.member_partitions == t.member_partitions
    assert (clone.fwd_latency, clone.rev_jitter) == (1.0, 2.0)
    assert clone.seed == t.seed


# ======================================================================
# Outages cut the window, not the link's life
# ======================================================================
def test_symmetric_outage_backlog_arrives_at_the_heal():
    t = ChaosTransport(FaultProfile(latency=2.0), seed=41,
                       outages=(LinkOutage(0.0, 200.0, "both"),))
    plan = _batches("s", 6)
    for batch in plan:
        t.send(batch)
    assert t.delivered == []            # everything eaten by the window
    t.settle()                          # crosses the heal at 200
    assert t.delivered == _flat(plan)
    assert t.chaos.partition_drops >= len(plan)


def test_outage_cut_transmissions_never_consume_retry_attempts():
    """A 10-window-long outage would trip ``max_retries`` if each cut
    counted as an attempt; the link must come back at the heal."""
    profile = FaultProfile(latency=2.0, retry_timeout=10.0, backoff=1.0,
                           max_retries=3)
    t = ChaosTransport(profile, seed=42,
                       outages=(LinkOutage(0.0, 500.0, "both"),))
    t.send([b"survivor"])
    t.settle()                          # 50 cut retransmits later...
    assert t.delivered == [b"survivor"]
    assert t.chaos.partition_drops > profile.max_retries


def test_rev_outage_stalls_acks_but_not_delivery():
    """The asymmetric partition: data keeps landing, every ack
    vanishes, so the sender's commit point freezes until the heal."""
    t = ChaosTransport(FaultProfile(latency=2.0), seed=43,
                       outages=(LinkOutage(0.0, 300.0, "rev"),))
    plan = _batches("r", 4)
    for batch in plan:
        t.send(batch)
    for _ in range(40):
        if t.delivered == _flat(plan):
            break
        t.poll()
    assert t.delivered == _flat(plan)   # delivery unaffected...
    assert t.ack_pending()              # ...but nothing is acked
    assert t.chaos.acks_cut > 0
    t.settle()
    assert not t.ack_pending()          # the heal releases the commit
    assert t.stats.retransmits > 0      # unacked data was re-sent


def test_fwd_outage_cuts_heartbeats():
    t = ChaosTransport(FaultProfile(latency=2.0), seed=44,
                       outages=(LinkOutage(0.0, 100.0, "fwd"),))
    t.send_heartbeat()
    assert t.chaos.heartbeats_cut == 1
    assert t.stats.heartbeats_delivered == 0
    assert t.stats.heartbeats_sent == 1


def test_chaos_is_deterministic_under_seed_and_schedule():
    def run():
        t = ChaosTransport(FAULT_PROFILES["lossy"], seed=45,
                           outages=link_flaps(20.0, 2, down=30.0, up=15.0))
        for batch in _batches("d", 10):
            t.send(batch)
        t.settle()
        return (list(t.delivered), t.chaos.partition_drops,
                t.stats.retransmits, t.stats.messages_dropped)

    assert run() == run()


# ======================================================================
# Member partitions are published, not silently enforced
# ======================================================================
def test_blocked_members_follows_the_delivered_log():
    t = ChaosTransport(member_partitions=(
        MemberPartition(1, 2.0, 4.0, "records"),))
    assert t.blocked_members() == frozenset()
    for batch in _batches("m", 2):
        t.send(batch)
    t.settle()
    assert len(t.delivered) == 2
    assert t.blocked_members() == frozenset({1})
    for batch in _batches("n", 2):
        t.send(batch)
    t.settle()
    assert t.blocked_members() == frozenset()   # healed by traffic


def test_time_partitions_heal_via_chaos_advance():
    """A gate starving on a partitioned quorum has no wire traffic to
    advance time with; ``chaos_advance`` jumps to the next schedule
    boundary instead of deadlocking."""
    t = ChaosTransport(member_partitions=(
        MemberPartition(2, 100.0, 200.0, "time"),))
    assert t.blocked_members() == frozenset()
    assert t.chaos_advance()            # -> onset at 100
    assert t.now == 100.0
    assert t.blocked_members() == frozenset({2})
    assert t.chaos_advance()            # -> heal at 200
    assert t.blocked_members() == frozenset()
    assert not t.chaos_advance()        # schedule exhausted
    assert t.chaos.boundary_jumps == 2


def test_chaos_advance_without_time_boundaries_gives_up():
    t = ChaosTransport(member_partitions=(
        MemberPartition(1, 0.0, 50.0, "records"),))
    assert not t.chaos_advance()        # records-unit: no time boundary


# ======================================================================
# Partition + heal under muxing keeps every group's prefix
# ======================================================================
@pytest.mark.parametrize("direction", ["both", "rev"])
def test_prefix_preserved_across_partition_and_heal_under_mux(direction):
    """One chaotic link sharing the mux with two healthy flaky links:
    the outage stalls only its own group, the backlog lands at the
    heal, and every group's delivered log is its own stream intact."""
    mux = TransportMux()
    chaotic = mux.register(ChaosTransport(
        FaultProfile(latency=2.0), seed=51,
        outages=(LinkOutage(5.0, 120.0, direction),)))
    healthy = [
        mux.register(FaultyTransport(FAULT_PROFILES["flaky"],
                                     seed=52 + i))
        for i in range(2)
    ]
    members = [chaotic] + healthy
    plans = [_batches(f"g{i}", 20) for i in range(3)]
    for i in range(20):
        for t, plan in zip(members, plans):
            while not t.send_nowait(plan[i]):
                mux.poll()
    for t in members:
        t.settle()
    for t, plan in zip(members, plans):
        assert t.delivered == _flat(plan)
    assert chaotic.chaos.partition_drops + chaotic.chaos.acks_cut > 0


def test_crash_inside_the_partition_keeps_the_prefix():
    """Crashing the sender mid-outage delivers exactly the pre-window
    contiguous prefix — cut transmissions stay lost, nothing reorders."""
    t = ChaosTransport(FaultProfile(latency=2.0), seed=53,
                       outages=(LinkOutage(5.0, 1e9, "both"),))
    plan = _batches("c", 12)
    for batch in plan:
        t.send_nowait(batch)
    t.crash_sender()
    sent = _flat(plan)
    assert t.delivered == sent[:len(t.delivered)]
    assert len(t.delivered) < len(sent)

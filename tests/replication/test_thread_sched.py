"""Replicated thread scheduling: unit-level controller behaviour."""

import pytest

from repro.env.environment import Environment
from repro.errors import RecoveryError
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import ScheduleRecord
from repro.replication.thread_sched import BackupSchedController
from repro.runtime.scheduler import ScheduleController, SliceEnd
from repro.runtime.threads import JavaThread, ThreadState

MULTI = """
    class W extends Thread {
        static Object lock = new Object();
        static int shared;
        void run() {
            for (int i = 0; i < 100; i++) {
                synchronized (lock) { shared = shared + 1; }
            }
        }
    }
    class Main {
        static void main(String[] args) {
            W a = new W(); W b = new W();
            a.start(); b.start(); a.join(); b.join();
            System.println(W.shared);
        }
    }
"""


def test_primary_logs_one_record_per_switch():
    env = Environment()
    machine = ReplicatedJVM(compile_program(MULTI), env=env,
                            strategy="thread_sched")
    machine.run("Main")
    metrics = machine.primary_metrics
    # Reschedules include the very first dispatch (no record) so
    # records == reschedules - 1 when no system threads intervene.
    assert metrics.schedule_records == metrics.reschedules - 1
    assert metrics.schedule_records > 2


def test_single_threaded_program_logs_no_schedule_records():
    """Paper: 'a record is sent only when a new thread is scheduled';
    single-threaded apps transmit none."""
    env = Environment()
    source = """
        class Main {
            static void main(String[] args) {
                int acc = 0;
                for (int i = 0; i < 5000; i++) { acc = acc + i; }
                System.println(acc);
            }
        }
    """
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy="thread_sched")
    machine.run("Main")
    assert machine.primary_metrics.schedule_records == 0


def test_records_capture_progress_of_descheduled_thread():
    env = Environment()
    machine = ReplicatedJVM(compile_program(MULTI), env=env,
                            strategy="thread_sched")
    machine.run("Main")
    from repro.replication.machine import parse_log
    parsed = parse_log(machine.channel.backup_log())
    assert parsed.schedules
    for record in parsed.schedules:
        assert record.br_cnt >= 0
        assert record.mon_cnt >= 0
        assert record.t_id != ()  # next thread named
        # prev and next differ (a switch happened)
        assert record.t_id != record.prev_t_id


def _controller(records):
    return BackupSchedController(
        records, ScheduleController(0, 50, 0), ReplicationMetrics()
    )


class _FakeJvm:
    def __init__(self, threads):
        self.threads_by_vid = {t.vid: t for t in threads}
        self.main_thread = threads[0]


class _FakeScheduler:
    def __init__(self):
        from collections import deque
        self.runnable = deque()


def _runnable(vid):
    t = JavaThread(vid, None)
    t.state = ThreadState.RUNNABLE
    return t


def test_backup_should_preempt_matches_progress_exactly():
    rec = ScheduleRecord(10, 4, 2, -1, (0, 0), (0,))
    ctrl = _controller([rec])
    t = _runnable((0,))
    t.br_cnt, t.mon_cnt = 10, 2
    # progress_point uses the current frame's pc; fake it with frames
    class _F:
        pc = 4
    t.frames = [_F()]
    assert ctrl.should_preempt(t) is True
    t.br_cnt = 9
    assert ctrl.should_preempt(t) is False
    t.br_cnt = 10
    _F.pc = 5
    assert ctrl.should_preempt(t) is False


def test_backup_consume_switches_current_thread():
    rec = ScheduleRecord(0, -1, 0, -1, (0, 0), (0,))
    ctrl = _controller([rec])
    main = _runnable((0,))
    child = _runnable((0, 0))
    ctrl.jvm = _FakeJvm([main, child])
    sched = _FakeScheduler()
    assert ctrl.pick_next(sched) is main
    ctrl._consume(rec, main)
    assert ctrl.pick_next(sched) is child
    assert not ctrl.in_recovery


def test_backup_detects_wrong_previous_thread():
    rec = ScheduleRecord(0, -1, 0, -1, (0, 0), (0,))
    ctrl = _controller([rec])
    impostor = _runnable((0, 1))
    with pytest.raises(RecoveryError, match="diverged"):
        ctrl._consume(rec, impostor)


def test_backup_detects_early_stop():
    rec = ScheduleRecord(100, 5, 0, -1, (0, 0), (0,))
    ctrl = _controller([rec])
    t = _runnable((0,))
    t.br_cnt = 3

    class _F:
        pc = 1
    t.frames = [_F()]
    with pytest.raises(RecoveryError, match="stopped"):
        ctrl.on_slice_end(t, SliceEnd.BLOCKED)


def test_backup_off_target_yield_is_tolerated():
    """The primary's yield that didn't switch produces no record; the
    backup must not consume one either."""
    rec = ScheduleRecord(100, 5, 0, -1, (0, 0), (0,))
    ctrl = _controller([rec])
    t = _runnable((0,))
    t.br_cnt = 3

    class _F:
        pc = 1
    t.frames = [_F()]
    ctrl.on_slice_end(t, SliceEnd.YIELDED)
    assert ctrl.remaining() == 1


def test_backup_names_unknown_thread():
    rec = ScheduleRecord(0, -1, 0, -1, (9, 9), (0,))
    ctrl = _controller([rec])
    main = _runnable((0,))
    ctrl.jvm = _FakeJvm([main])
    ctrl._current_vid = (9, 9)
    with pytest.raises(RecoveryError, match="unknown thread"):
        ctrl.pick_next(_FakeScheduler())


def test_backup_live_mode_delegates_to_fallback():
    ctrl = _controller([])
    main = _runnable((0,))
    sched = _FakeScheduler()
    sched.runnable.append(main)
    assert ctrl.pick_next(sched) is main
    assert ctrl.quantum(main) == 50  # fallback quantum, not replay

"""Log record serialization round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReplicationError
from repro.replication.records import (
    IdMap,
    LockAcqRecord,
    NativeResultRecord,
    OutputIntentRecord,
    ScheduleRecord,
    SideEffectRecord,
    decode_record,
    encode,
)

_vids = st.lists(st.integers(0, 50), min_size=1, max_size=4).map(tuple)


def _round(record):
    decoded = decode_record(encode(record))
    assert decoded == record
    return decoded


def test_id_map():
    _round(IdMap(12, (0, 1), 34))


def test_lock_acq():
    _round(LockAcqRecord((0, 2, 1), 99, 7, 12345))


def test_schedule_record():
    rec = _round(ScheduleRecord(1000, 17, 4, -1, (0, 1), (0,)))
    assert rec.progress == (1000, 17, 4)


def test_schedule_record_negative_pc():
    # terminated threads report pc_off -1
    _round(ScheduleRecord(5, -1, 2, 3, (0,), (0, 1)))


def test_native_result_with_exception_and_arrays():
    _round(NativeResultRecord(
        (0,), 3, "Files.readLine/1", "line text",
        ("IOException", "gone"), {0: [1, 2, 3], 2: ["a", "b"]},
    ))


def test_native_result_value_kinds():
    for value in (None, 42, -1, 2.5, "s", [1, 2]):
        _round(NativeResultRecord((0,), 1, "X.f/0", value))


def test_output_intent():
    _round(OutputIntentRecord((0, 4), 9, "System.println/1"))


def test_side_effect_record():
    _round(SideEffectRecord("file", {"op": "open", "fd": 3,
                                     "path": "x.txt", "offset": 0}))


def test_decode_garbage():
    with pytest.raises(ReplicationError):
        decode_record(b"\x63junk")


def test_decode_trailing_bytes():
    data = encode(IdMap(1, (0,), 1)) + b"\x00"
    with pytest.raises(ReplicationError, match="trailing"):
        decode_record(data)


@given(_vids, st.integers(0, 10**6), st.integers(0, 10**4),
       st.integers(0, 10**7))
def test_lock_record_property(vid, t_asn, l_id, l_asn):
    _round(LockAcqRecord(vid, t_asn, l_id, l_asn))


@given(st.integers(0, 10**9), st.integers(-1, 10**4), st.integers(0, 10**6),
       st.integers(-1, 10**6), _vids, _vids)
def test_schedule_record_property(br, pc, mon, l_asn, t_id, prev):
    _round(ScheduleRecord(br, pc, mon, l_asn, t_id, prev))


@given(st.dictionaries(st.text(max_size=10), st.one_of(
    st.integers(-10**9, 10**9), st.text(max_size=20), st.none(),
), max_size=5))
def test_side_effect_payload_property(payload):
    _round(SideEffectRecord("h", payload))

"""Multiplexed transport operation: many group connections, one loop.

The fleet hangs every replica group's connection off a single
``TransportMux``.  The properties that make that safe:

* frames from different groups never cross connections — each
  transport's delivered log depends only on what *it* was sent;
* one group blocking (ack wait, backpressure stall) services the other
  members between its own steps, so a stalled link never freezes the
  rest of the fleet;
* fault injection (drops, dups, reordering) composes with muxing: the
  per-group contiguous-prefix rule — the foundation of output commit —
  holds for every member independently.
"""

import pytest

from repro.replication.transport import (
    FAULT_PROFILES,
    FaultProfile,
    FaultyTransport,
    InMemoryTransport,
    TransportMux,
)


def _batches(tag, n):
    return [[f"{tag}{i}".encode()] for i in range(n)]


def _flat(batches):
    return [rec for batch in batches for rec in batch]


# ======================================================================
# Frame isolation
# ======================================================================
def test_interleaved_frames_stay_on_their_connection():
    """Batches from three groups interleaved through one mux arrive
    complete, in order, and only on their own connection."""
    mux = TransportMux()
    transports = [
        mux.register(FaultyTransport(FAULT_PROFILES["flaky"], seed=40 + i))
        for i in range(3)
    ]
    plans = [_batches(tag, 12) for tag in ("a", "b", "c")]
    # Round-robin interleave: group 0 frame 0, group 1 frame 0, ...
    for i in range(12):
        for t, plan in zip(transports, plans):
            while not t.send_nowait(plan[i]):
                mux.poll()
    for t in transports:
        t.settle()
    for t, plan in zip(transports, plans):
        assert t.delivered == _flat(plan)


def test_mux_poll_advances_every_member():
    mux = TransportMux()
    slow = mux.register(FaultyTransport(FaultProfile(latency=30.0), seed=1))
    fast = mux.register(FaultyTransport(FaultProfile(latency=2.0), seed=2))
    slow.send_nowait([b"s"])
    fast.send_nowait([b"f"])
    for _ in range(200):
        if not mux.poll() and not mux.ack_pending():
            break
    assert slow.delivered == [b"s"]
    assert fast.delivered == [b"f"]
    assert not mux.ack_pending()


# ======================================================================
# A stalled member never freezes the rest
# ======================================================================
def test_backpressured_member_services_others():
    """While one member spins in a backpressure stall, its blocking
    ``send`` keeps polling the other members — their frames land even
    though nobody polls them directly."""
    mux = TransportMux()
    stalled = mux.register(FaultyTransport(
        FaultProfile(window=1, latency=80.0, retry_timeout=400.0), seed=3,
    ))
    bystander = mux.register(FaultyTransport(
        FaultProfile(latency=30.0), seed=4,
    ))
    for batch in _batches("b", 5):
        bystander.send_nowait(batch)
    # Sending advances the bystander's clock by far less than its
    # latency: nothing has been delivered yet.
    assert bystander.delivered == []

    stalled.send([b"x0"])
    stalled.send([b"x1"])       # window full: blocks until x0's ack
    assert stalled.stats.backpressure_stalls > 0
    # The bystander's frames moved while the stalled member blocked —
    # nobody polled it directly, the stall's wait loop serviced it.
    assert bystander.delivered
    bystander.settle()
    assert bystander.delivered == _flat(_batches("b", 5))


def test_ack_wait_services_others():
    mux = TransportMux()
    waiter = mux.register(FaultyTransport(
        FaultProfile(latency=60.0), seed=5,
    ))
    bystander = mux.register(FaultyTransport(
        FaultProfile(latency=2.0), seed=6,
    ))
    for batch in _batches("b", 4):
        bystander.send_nowait(batch)
    waiter.send([b"w"])
    waited = waiter.wait_ack()
    assert waited > 0
    assert waiter.delivered == [b"w"]
    assert bystander.delivered == _flat(_batches("b", 4))


def test_unmuxed_transport_blocking_still_works():
    """The mux hook is optional: an unregistered transport's blocking
    waits behave exactly as before."""
    t = FaultyTransport(FaultProfile(latency=10.0), seed=7)
    assert t.mux is None
    t.send([b"x"])
    assert t.wait_ack() > 0
    assert t.delivered == [b"x"]


# ======================================================================
# Faults compose with muxing
# ======================================================================
def test_faulty_members_drop_and_duplicate_independently():
    """Seeded fault schedules stay per-connection under the mux: each
    member sees its own drops/dups, and settling still delivers every
    member's stream exactly once, in order."""
    mux = TransportMux()
    members = [
        mux.register(FaultyTransport(
            FaultProfile(drop_rate=0.3, dup_rate=0.3, latency=4.0,
                         retry_timeout=30.0),
            seed=100 + i,
        ))
        for i in range(3)
    ]
    plans = [_batches(f"m{i}", 20) for i in range(3)]
    for i in range(20):
        for t, plan in zip(members, plans):
            while not t.send_nowait(plan[i]):
                mux.poll()
        mux.poll()
    for t in members:
        t.settle()
    assert sum(t.stats.messages_dropped for t in members) > 0
    assert sum(t.stats.messages_duplicated for t in members) > 0
    for t, plan in zip(members, plans):
        assert t.delivered == _flat(plan)


@pytest.mark.parametrize("profile", ["lossy", "flaky", "jittery"])
def test_per_group_prefix_property_under_mux(profile):
    """Crash every member mid-stream: each delivered log is a
    contiguous prefix of that member's own flushed stream (the
    output-commit invariant), regardless of the other members."""
    mux = TransportMux()
    members = [
        mux.register(FaultyTransport(FAULT_PROFILES[profile],
                                     seed=7000 + i))
        for i in range(3)
    ]
    plans = [_batches(f"g{i}", 25) for i in range(3)]
    for i in range(25):
        for t, plan in zip(members, plans):
            while not t.send_nowait(plan[i]):
                mux.poll()
    for t in members:
        t.crash_sender()
    for t, plan in zip(members, plans):
        sent = _flat(plan)
        assert t.delivered == sent[:len(t.delivered)]


def test_unregister_detaches_the_mux_hook():
    mux = TransportMux()
    t = mux.register(InMemoryTransport())
    assert t.mux is mux
    mux.unregister(t)
    assert t.mux is None
    assert t not in mux.members()


def test_readiness_callbacks_fire_under_mux_polling():
    mux = TransportMux()
    t = mux.register(FaultyTransport(FaultProfile(latency=5.0), seed=9))
    delivered, acked = [], []
    t.on_deliver = lambda _t, n: delivered.append(n)
    t.on_ack = lambda _t, through: acked.append(through)
    t.send_nowait([b"a", b"b"])
    for _ in range(100):
        if not mux.poll() and not mux.ack_pending():
            break
    assert sum(delivered) == 2
    assert acked and acked[-1] == 0


# ======================================================================
# Poll fairness: a due backlog is drained in bounded slices
# ======================================================================
def test_post_heal_herd_does_not_starve_other_members():
    """A healed partition releases its whole backlog as one due burst;
    the per-poll drain bound hands it out in slices so the other
    members' frames still land inside the same mux pass."""
    from repro.replication.transport import ChaosTransport, LinkOutage

    mux = TransportMux()
    flooded = mux.register(ChaosTransport(
        FaultProfile(latency=2.0, window=64), seed=11,
        outages=(LinkOutage(0.0, 500.0, "fwd"),)))
    bystander = mux.register(FaultyTransport(FaultProfile(latency=2.0),
                                             seed=12))
    plan = _batches("f", 40)
    for batch in plan:
        assert flooded.send_nowait(batch)
    assert flooded.delivered == []          # all 40 cut by the outage
    flooded.chaos_advance()                 # jump to the heal boundary
    bystander.send_nowait([b"b0"])

    mux.poll()                              # retransmit burst hits the wire
    mux.poll()                              # the herd starts landing...
    assert 0 < len(flooded.delivered) <= flooded.poll_drain_limit
    assert bystander.delivered == [b"b0"]   # ...and the bystander got through

    for _ in range(2000):
        if not mux.poll() and not mux.ack_pending():
            break
    assert flooded.delivered == _flat(plan)
    assert not mux.ack_pending()

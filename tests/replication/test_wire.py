"""Wire format: varints, tagged values, round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReplicationError
from repro.replication.wire import Reader, Writer


def _round(write_fn, read_fn):
    w = Writer()
    write_fn(w)
    r = Reader(w.bytes())
    value = read_fn(r)
    assert r.exhausted
    return value


def test_uvarint_small():
    assert _round(lambda w: w.uvarint(0), lambda r: r.uvarint()) == 0
    assert _round(lambda w: w.uvarint(127), lambda r: r.uvarint()) == 127
    assert _round(lambda w: w.uvarint(128), lambda r: r.uvarint()) == 128


def test_uvarint_rejects_negative():
    with pytest.raises(ReplicationError):
        Writer().uvarint(-1)


def test_svarint_signs():
    for v in (0, 1, -1, 12345, -12345, 2**31 - 1, -(2**31)):
        assert _round(lambda w: w.svarint(v), lambda r: r.svarint()) == v


def test_text_unicode():
    s = "héllo wörld ✓"
    assert _round(lambda w: w.text(s), lambda r: r.text()) == s


def test_vid_round_trip():
    vid = (0, 3, 17)
    assert _round(lambda w: w.vid(vid), lambda r: r.vid()) == vid
    assert _round(lambda w: w.vid(()), lambda r: r.vid()) == ()


def test_tagged_values():
    for v in (None, 0, -5, 3.25, "text", [1, 2, 3], [1.5, "x", None],
              [[1], [2, 3]]):
        assert _round(lambda w: w.value(v), lambda r: r.value()) == v


def test_bool_values_become_ints():
    assert _round(lambda w: w.value(True), lambda r: r.value()) == 1


def test_references_refuse_to_cross_the_wire():
    from repro.runtime.values import JObject
    with pytest.raises(ReplicationError, match="never"):
        Writer().value(JObject("X", {}, 1))


def test_truncated_record_detected():
    w = Writer()
    w.text("hello")
    data = w.bytes()[:-2]
    with pytest.raises(ReplicationError, match="truncated"):
        Reader(data).text()


def test_unknown_value_tag():
    with pytest.raises(ReplicationError, match="tag"):
        Reader(b"\x7f").value()


def test_lock_record_is_compact():
    """Sanity against the paper's 36-byte records: a typical lock
    acquisition record should be well under 36 bytes on our wire."""
    from repro.replication.records import LockAcqRecord, encode
    data = encode(LockAcqRecord((0, 1), 1000, 12, 50000))
    assert len(data) <= 36


@given(st.lists(st.one_of(
    st.none(),
    st.integers(-2**60, 2**60),
    st.floats(allow_nan=False),
    st.text(max_size=40),
), max_size=10))
def test_value_list_round_trip_property(values):
    assert _round(lambda w: w.value(values), lambda r: r.value()) == values


@given(st.integers(0, 2**63 - 1))
def test_uvarint_round_trip_property(v):
    assert _round(lambda w: w.uvarint(v), lambda r: r.uvarint()) == v

"""Property-based round-trip fuzzing of the wire encoding.

The invariant: for every registered record kind (the seven core kinds,
the digest kind, and a custom plug-in kind at ``FIRST_CUSTOM_KIND``),
``encode -> parse_log -> encode`` is the identity on wire bytes.
Byte-level identity is the right property (not dataclass equality):
it also holds for NaN floats and for bools, which decode as ints but
re-encode to the identical bytes.
"""

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication.digest import DigestRecord
from repro.replication.machine import parse_log, register_log_record
from repro.replication.records import (
    FIRST_CUSTOM_KIND,
    IdMap,
    LockAcqRecord,
    LockIntervalRecord,
    NativeResultRecord,
    OutputIntentRecord,
    ScheduleRecord,
    SideEffectRecord,
    decode_record,
    encode,
    register_record_kind,
)
from repro.replication.wire import Reader, Writer


# ======================================================================
# A plug-in record at FIRST_CUSTOM_KIND
# ======================================================================
@dataclass(frozen=True)
class ProbeRecord:
    """Minimal custom record exercising the plug-in registration path."""

    tag: str
    payload: int

    def write(self, w: Writer) -> None:
        w.uvarint(FIRST_CUSTOM_KIND).text(self.tag).svarint(self.payload)

    @staticmethod
    def read(r: Reader) -> "ProbeRecord":
        return ProbeRecord(r.text(), r.svarint())


register_record_kind(FIRST_CUSTOM_KIND, ProbeRecord.read, replace=True)
register_log_record(ProbeRecord)


# ======================================================================
# Strategies
# ======================================================================
uints = st.integers(min_value=0, max_value=2**62)
sints = st.integers(min_value=-(2**62), max_value=2**62)
vids = st.lists(st.integers(min_value=0, max_value=2**20),
                min_size=1, max_size=4).map(tuple)
texts = st.text(max_size=40)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    sints,
    st.floats(allow_nan=True, allow_infinity=True),
    texts,
)
values = st.one_of(scalars, st.lists(scalars, max_size=6))

id_maps = st.builds(IdMap, l_id=uints, t_id=vids, t_asn=uints)
lock_acqs = st.builds(LockAcqRecord, t_id=vids, t_asn=uints,
                      l_id=uints, l_asn=uints)
schedules = st.builds(ScheduleRecord, br_cnt=uints, pc_off=sints,
                      mon_cnt=uints, l_asn=sints, t_id=vids,
                      prev_t_id=vids)
native_results = st.builds(
    NativeResultRecord, t_id=vids, seq=uints, signature=texts,
    value=values,
    exception=st.one_of(st.none(), st.tuples(texts, texts)),
    array_results=st.dictionaries(
        st.integers(min_value=0, max_value=8),
        st.lists(scalars, max_size=4),
        max_size=3,
    ),
)
intents = st.builds(OutputIntentRecord, t_id=vids, seq=uints,
                    signature=texts)
side_effects = st.builds(
    SideEffectRecord, handler=texts,
    payload=st.dictionaries(texts, scalars, max_size=4),
)
intervals = st.builds(LockIntervalRecord, t_id=vids, count=uints)
digest_components = st.lists(
    st.tuples(texts, st.integers(min_value=0, max_value=2**128 - 1)),
    max_size=5,
).map(tuple)
digests = st.builds(DigestRecord, epoch=uints, final=st.booleans(),
                    components=digest_components)
probes = st.builds(ProbeRecord, tag=texts, payload=sints)

all_records = st.one_of(
    id_maps, lock_acqs, schedules, native_results, intents,
    side_effects, intervals, digests, probes,
)


# ======================================================================
# Properties
# ======================================================================
@given(record=all_records)
@settings(max_examples=300)
def test_encode_decode_encode_is_identity(record):
    data = encode(record)
    decoded = decode_record(data)
    assert type(decoded) is type(record)
    assert encode(decoded) == data


@given(records=st.lists(all_records, max_size=12))
@settings(max_examples=150)
def test_encode_parse_log_encode_is_identity(records):
    raw = [encode(r) for r in records]
    parsed = parse_log(raw)
    assert parsed.total == len(records)
    gathered = (
        list(parsed.id_maps) + list(parsed.lock_acqs)
        + list(parsed.schedules)
        + [r for rs in parsed.results.values() for r in rs]
        + [r for rs in parsed.intents.values() for r in rs]
        + list(parsed.intervals) + list(parsed.side_effects)
        + list(parsed.digests)
        + [r for rs in parsed.extra.values() for r in rs]
    )
    assert sorted(encode(r) for r in gathered) == sorted(raw)


@given(record=all_records)
@settings(max_examples=100)
def test_parse_log_preserves_arrival_order_within_kind(record):
    raw = [encode(record)] * 3
    parsed = parse_log(raw)
    assert parsed.total == 3

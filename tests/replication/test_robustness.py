"""Robustness of the replication layer against abuse and edge inputs."""

import pytest

from repro.env.environment import Environment
from repro.errors import RecoveryError, ReplicationError
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM, parse_log
from repro.replication.records import (
    LockAcqRecord,
    ScheduleRecord,
    encode,
)

HELLO = """
class Main {
    static void main(String[] args) { System.println("hi"); }
}
"""


def test_parse_log_rejects_garbage():
    with pytest.raises(ReplicationError):
        parse_log([b"\xff\xff\xffgarbage"])


def test_backup_with_foreign_lock_log_diverges_loudly():
    """Feeding the backup a log from a *different* program must produce
    a RecoveryError, not silent corruption."""
    env = Environment()
    machine = ReplicatedJVM(compile_program("""
        class Main {
            static Object lock = new Object();
            static void main(String[] args) {
                synchronized (lock) { }
                System.println("done");
            }
        }
    """), env=env, strategy="lock_sync")
    machine.run("Main")
    # Corrupt the delivered log: claim the main thread's first
    # acquisition was the lock's *second* (l_asn 2 never precedes 1).
    bogus = encode(LockAcqRecord((0,), 1, 1, 2))
    machine.channel.delivered[:] = [bogus]
    with pytest.raises((RecoveryError, Exception)):
        machine.replay_backup("Main")


def test_schedule_log_with_impossible_progress_detected():
    env = Environment()
    machine = ReplicatedJVM(compile_program(HELLO), env=env,
                            strategy="thread_sched")
    machine.run("Main")
    # A schedule record claiming the main thread switched to a thread
    # that never exists.
    machine.channel.delivered[:] = [
        encode(ScheduleRecord(2, 1, 0, -1, (9, 9, 9), (0,)))
    ]
    with pytest.raises(RecoveryError):
        machine.replay_backup("Main")


def test_crash_at_zero_events_never_fires():
    env = Environment()
    machine = ReplicatedJVM(compile_program(
        "class Main { static void main(String[] args) { } }"
    ), env=env, crash_at=1)
    result = machine.run("Main")
    # The program logs nothing, so the injector never reaches event 1.
    assert result.outcome == "primary_completed"


def test_machine_metrics_available_after_both_outcomes():
    env = Environment()
    machine = ReplicatedJVM(compile_program(HELLO), env=env)
    result = machine.run("Main")
    assert result.primary_metrics.output_commits == 1
    assert result.backup_metrics is None  # cold backup never ran

    env = Environment()
    machine = ReplicatedJVM(compile_program(HELLO), env=env, crash_at=2)
    result = machine.run("Main")
    assert result.failed_over
    assert result.backup_metrics is not None
    assert result.primary_metrics is not machine.backup_metrics


def test_backup_log_accessor_is_a_copy():
    env = Environment()
    machine = ReplicatedJVM(compile_program(HELLO), env=env)
    machine.run("Main")
    log = machine.channel.backup_log()
    log.clear()
    assert machine.channel.backup_log()  # original unaffected


def test_double_failover_is_not_a_thing():
    """Once the primary crashed and the backup finished, a second run()
    on the same machine is a misuse: the primary is already bootstrapped."""
    env = Environment()
    machine = ReplicatedJVM(compile_program(HELLO), env=env, crash_at=2)
    machine.run("Main")
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        machine.run("Main")

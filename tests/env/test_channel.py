"""Logging channel: buffering, flush policy, crash semantics."""

from repro.env.channel import Channel


def test_records_buffer_until_batch_full():
    ch = Channel(batch_records=3)
    ch.send_record(b"a")
    ch.send_record(b"b")
    assert ch.delivered == []
    assert ch.pending_records == 2
    ch.send_record(b"c")       # batch full -> auto flush
    assert ch.delivered == [b"a", b"b", b"c"]
    assert ch.pending_records == 0
    assert ch.messages_sent == 1
    assert ch.records_sent == 3
    assert ch.bytes_sent == 3


def test_explicit_flush():
    ch = Channel(batch_records=100)
    ch.send_record(b"xy")
    ch.flush()
    assert ch.delivered == [b"xy"]
    assert ch.messages_sent == 1
    ch.flush()  # empty flush is a no-op
    assert ch.messages_sent == 1


def test_flush_and_wait_ack_counts_acks():
    ch = Channel()
    ch.send_record(b"r")
    ch.flush_and_wait_ack()
    assert ch.acks_received == 1
    assert ch.delivered == [b"r"]


def test_crash_loses_buffered_records():
    ch = Channel(batch_records=100)
    ch.send_record(b"delivered")
    ch.flush()
    ch.send_record(b"lost1")
    ch.send_record(b"lost2")
    ch.crash_primary()
    assert ch.backup_log() == [b"delivered"]
    # Post-crash sends are ignored (the sender is dead).
    ch.send_record(b"zombie")
    ch.flush()
    assert ch.backup_log() == [b"delivered"]


def test_flush_observer_invoked():
    seen = []
    ch = Channel(batch_records=2)
    ch.on_flush = lambda n, nbytes: seen.append((n, nbytes))
    ch.send_record(b"aa")
    ch.send_record(b"bbb")
    assert seen == [(2, 5)]


def test_ack_observer_invoked():
    hits = []
    ch = Channel()
    ch.on_ack_wait = lambda: hits.append(1)
    ch.send_record(b"x")
    ch.flush_and_wait_ack()
    assert hits == [1]

"""Simulated file system: modes, offsets, stable contents."""

import pytest

from repro.env.filesystem import FileSystem, JavaIOError


def test_write_and_read_back():
    fs = FileSystem()
    h = fs.open("a.txt", "w")
    h.write("hello\nworld\n")
    r = fs.open("a.txt", "r")
    assert r.read_line() == "hello"
    assert r.read_line() == "world"
    assert r.read_line() == ""


def test_open_read_missing_file():
    with pytest.raises(JavaIOError, match="no such file"):
        FileSystem().open("ghost", "r")


def test_open_w_truncates():
    fs = FileSystem()
    fs.put("a", "old contents")
    fs.open("a", "w")
    assert fs.contents("a") == ""


def test_open_append_positions_at_end():
    fs = FileSystem()
    fs.put("a", "one\n")
    h = fs.open("a", "a")
    h.write("two\n")
    assert fs.contents("a") == "one\ntwo\n"


def test_rplus_preserves_contents():
    fs = FileSystem()
    fs.put("a", "abcdef")
    h = fs.open("a", "r+")
    h.seek(2)
    h.write("XY")
    assert fs.contents("a") == "abXYef"


def test_write_past_end_zero_fills():
    fs = FileSystem()
    h = fs.open("a", "w")
    h.seek(3)
    h.write("x")
    assert fs.contents("a") == "\0\0\0x"


def test_read_only_handle_rejects_write():
    fs = FileSystem()
    fs.put("a", "data")
    h = fs.open("a", "r")
    with pytest.raises(JavaIOError, match="not writable"):
        h.write("nope")


def test_read_char_sequence_and_eof():
    fs = FileSystem()
    fs.put("a", "hi")
    h = fs.open("a", "r")
    assert h.read_char() == ord("h")
    assert h.read_char() == ord("i")
    assert h.read_char() == -1
    assert h.read_char() == -1


def test_seek_and_tell():
    fs = FileSystem()
    fs.put("a", "0123456789")
    h = fs.open("a", "r")
    h.seek(5)
    assert h.tell() == 5
    assert h.read_char() == ord("5")
    with pytest.raises(JavaIOError):
        h.seek(-1)


def test_bad_open_mode():
    with pytest.raises(JavaIOError, match="bad open mode"):
        FileSystem().open("a", "rw")


def test_size_exists_delete():
    fs = FileSystem()
    fs.put("a", "xyz")
    assert fs.exists("a")
    assert fs.size("a") == 3
    fs.delete("a")
    assert not fs.exists("a")
    with pytest.raises(JavaIOError):
        fs.size("a")
    with pytest.raises(JavaIOError):
        fs.delete("a")


def test_paths_sorted():
    fs = FileSystem()
    fs.put("b", "")
    fs.put("a", "")
    assert fs.paths() == ["a", "b"]

"""Environment sessions: volatile vs stable state, crash semantics."""

import pytest

from repro.env.console import Console
from repro.env.environment import Environment, SessionDestroyed
from repro.env.filesystem import JavaIOError


def test_console_positions_and_transcript():
    c = Console()
    assert c.position() == 0
    assert c.write("ab") == 2
    assert c.write("c\n") == 4
    assert c.transcript() == "abc\n"
    assert c.lines() == ["abc"]


def test_session_fds_are_volatile():
    env = Environment()
    env.fs.put("f", "stable data")
    s = env.attach("p1")
    fd = s.open("f", "r")
    assert s.handle(fd).read_line() == "stable data"
    s.destroy()
    with pytest.raises(SessionDestroyed):
        s.handle(fd)
    # Stable data survives the crash.
    assert env.fs.contents("f") == "stable data"
    # A new session starts with a fresh fd table.
    s2 = env.attach("p2")
    with pytest.raises(JavaIOError, match="bad file descriptor"):
        s2.handle(fd)


def test_fd_numbers_start_at_three_and_increase():
    env = Environment()
    env.fs.put("f", "")
    s = env.attach("p")
    assert s.open("f", "r") == 3
    assert s.open("f", "r") == 4


def test_close_releases_fd():
    env = Environment()
    env.fs.put("f", "")
    s = env.attach("p")
    fd = s.open("f", "r")
    s.close(fd)
    with pytest.raises(JavaIOError):
        s.handle(fd)


def test_restore_fd_rebuilds_offset_and_numbering():
    env = Environment()
    env.fs.put("f", "0123456789")
    s = env.attach("backup")
    s.restore_fd(7, "f", 4, "r")
    assert s.handle(7).read_char() == ord("4")
    # next fresh fd continues above the restored one
    assert s.open("f", "r") == 8


def test_clock_is_monotone_and_differs_across_sessions():
    env = Environment()
    a = env.attach("primary", clock_offset_ms=0)
    b = env.attach("backup", clock_offset_ms=137)
    reads_a = [a.clock_ms() for _ in range(5)]
    assert reads_a == sorted(reads_a)
    assert reads_a[0] < reads_a[-1]
    assert a.clock_ms() != b.clock_ms()


def test_entropy_differs_across_sessions_but_repeats_per_seed():
    env1 = Environment()
    env2 = Environment()
    a1 = env1.attach("p", entropy_seed=5)
    a2 = env2.attach("p", entropy_seed=5)
    b = env1.attach("q", entropy_seed=6)
    seq1 = [a1.random_int(1000) for _ in range(4)]
    seq2 = [a2.random_int(1000) for _ in range(4)]
    seqb = [b.random_int(1000) for _ in range(4)]
    assert seq1 == seq2
    assert seq1 != seqb


def test_stable_digest_covers_files_and_console():
    env = Environment()
    d0 = env.stable_digest()
    env.fs.put("x", "1")
    d1 = env.stable_digest()
    env.console.write("hello")
    d2 = env.stable_digest()
    assert len({d0, d1, d2}) == 3


def test_snapshot_stable():
    env = Environment()
    env.fs.put("a", "A")
    env.console.write("out")
    snap = env.snapshot_stable()
    assert snap == {"file:a": "A", "console": "out"}


def test_destroyed_session_blocks_everything():
    env = Environment()
    s = env.attach("p")
    s.destroy()
    for op in (s.clock_ms, lambda: s.random_int(5), s.open_fds,
               lambda: s.console_write("x"), lambda: s.open("f", "w")):
        with pytest.raises(SessionDestroyed):
            op()

"""Method-reference operand encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.bytecode.methodref import MethodRef, method_ref, parse_method_ref
from repro.errors import BytecodeError


def test_encode_decode():
    ref = parse_method_ref(method_ref("Foo", "bar", 3, True))
    assert ref == MethodRef("Foo", "bar", 3, True)


def test_void_return_flag():
    assert parse_method_ref("A.b/0/0").returns is False
    assert parse_method_ref("A.b/0/1").returns is True


def test_ctor_ref():
    ref = parse_method_ref("Thing.<init>/2/0")
    assert ref.method_name == "<init>"
    assert ref.nargs == 2


@pytest.mark.parametrize("bad", [
    "",  "Foo", "Foo.bar", "Foo.bar/x/0", "Foo.bar/1/2", "Foo.bar/-1/0",
    ".bar/1/0", "Foo./1/0",
])
def test_malformed_refs(bad):
    with pytest.raises(BytecodeError):
        parse_method_ref(bad)


def test_method_name_may_contain_dots_only_in_class_part():
    # The first '.' splits class from method; methods keep the rest.
    ref = parse_method_ref("A.b.c/1/0")
    assert ref.class_name == "A"
    assert ref.method_name == "b.c"


@given(
    st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
            min_size=1, max_size=8),
    st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
            min_size=1, max_size=8),
    st.integers(0, 20),
    st.booleans(),
)
def test_round_trip_property(cls, name, nargs, returns):
    encoded = method_ref(cls, name, nargs, returns)
    decoded = parse_method_ref(encoded)
    assert decoded == MethodRef(cls, name, nargs, returns)

"""Textual assembler and disassembler, including round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bytecode.assembler import assemble, disassemble
from repro.bytecode.opcodes import Op
from repro.errors import BytecodeError


def test_assemble_simple_loop():
    code = assemble("""
        iconst 0
        store 0
      top:
        load 0
        iconst 10
        if_icmp ge done
        iinc 0 1
        goto top
      done:
        return
    """, max_locals=1)
    assert len(code) == 8
    assert code.instructions[4].op is Op.IF_ICMP
    assert code.instructions[4].operands == ("ge", 7)
    assert code.instructions[6].operands == (2,)


def test_comments_and_blank_lines_ignored():
    code = assemble("""
        ; a comment
        nop   ; trailing comment

        return
    """)
    assert [i.op for i in code.instructions] == [Op.NOP, Op.RETURN]


def test_string_literal_escapes():
    code = assemble(r'''
        sconst "a\nb\t\"q\\"
        pop
        return
    ''')
    assert code.instructions[0].operands == ('a\nb\t"q\\',)


def test_hex_and_negative_ints():
    code = assemble("""
        iconst 0x10
        iconst -3
        iadd
        pop
        return
    """)
    assert code.instructions[0].operands == (16,)
    assert code.instructions[1].operands == (-3,)


def test_unknown_opcode_reports_line():
    with pytest.raises(BytecodeError, match="line 2"):
        assemble("nop\nfrobnicate\n")


def test_wrong_operand_count_reports_line():
    with pytest.raises(BytecodeError, match="line 1"):
        assemble("iconst\n")


def test_unquoted_string_operand_rejected():
    with pytest.raises(BytecodeError, match="quoted"):
        assemble("sconst hello\nreturn\n")


def test_method_ref_operand_passthrough():
    code = assemble("""
        sconst "x"
        invokestatic System.println/1/0
        return
    """)
    assert code.instructions[1].operands == ("System.println/1/0",)


def test_disassemble_round_trip_with_exception_table():
    original = assemble("""
      try_start:
        iconst 1
        iconst 0
        idiv
        pop
      try_end:
        goto out
      handler:
        pop
      out:
        return
    """)
    # attach a region manually through re-assembly of builder output
    from repro.bytecode.builder import CodeBuilder
    b = CodeBuilder()
    b.label("s")
    b.emit(Op.ICONST, 1)
    b.emit(Op.ICONST, 0)
    b.emit(Op.IDIV)
    b.emit(Op.POP)
    b.label("e")
    b.emit(Op.GOTO, "out")
    b.label("h")
    b.emit(Op.POP)
    b.label("out")
    b.emit(Op.RETURN)
    b.exception_region("s", "e", "h", "ArithmeticException")
    code = b.assemble()
    text = disassemble(code)
    assert "ArithmeticException" in text
    reassembled = assemble(text)
    assert [i.op for i in reassembled.instructions][:len(code.instructions)] \
        == [i.op for i in code.instructions]
    del original


_SIMPLE_OPS = st.sampled_from([
    "nop", "pop2const", "iadd", "isub", "imul",
])


@st.composite
def _linear_programs(draw):
    """Generate small straight-line programs that keep stack balance."""
    n = draw(st.integers(min_value=1, max_value=12))
    lines = []
    for _ in range(n):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            lines.append(f"iconst {draw(st.integers(-1000, 1000))}")
            lines.append("pop")
        elif kind == 1:
            value = draw(st.floats(allow_nan=False, allow_infinity=False,
                                   width=32))
            lines.append(f"fconst {value!r}")
            lines.append("pop")
        elif kind == 2:
            text = draw(st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=8,
            ))
            escaped = text.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(f'sconst "{escaped}"')
            lines.append("pop")
        else:
            lines.append("nop")
    lines.append("return")
    return "\n".join(lines)


@settings(max_examples=60, deadline=None)
@given(_linear_programs())
def test_assemble_disassemble_round_trip(program):
    code = assemble(program)
    text = disassemble(code)
    again = assemble(text)
    assert [(i.op, i.operands) for i in again.instructions] == \
        [(i.op, i.operands) for i in code.instructions]

"""Static bytecode verification."""

import pytest

from repro.bytecode.assembler import assemble
from repro.bytecode.builder import CodeBuilder
from repro.bytecode.opcodes import Op
from repro.bytecode.verifier import stack_effect, verify
from repro.bytecode.instructions import ins
from repro.errors import VerifyError


def _code(text, max_locals=0):
    return assemble(text, max_locals=max_locals)


def test_max_stack_simple():
    code = _code("""
        iconst 1
        iconst 2
        iadd
        pop
        return
    """)
    assert verify(code) == 2


def test_empty_method_rejected():
    from repro.bytecode.instructions import Code
    with pytest.raises(VerifyError, match="empty"):
        verify(Code([], max_locals=0))


def test_underflow_detected():
    code = _code("iadd\nreturn\n")
    with pytest.raises(VerifyError, match="pops 2"):
        verify(code)


def test_fall_off_end_detected():
    code = _code("nop\n")
    with pytest.raises(VerifyError, match="falls off"):
        verify(code)


def test_inconsistent_merge_depth():
    # One path leaves an extra value on the stack at the join point.
    b = CodeBuilder()
    b.emit(Op.ICONST, 1)
    b.emit(Op.IF, "ne", "push_two")
    b.emit(Op.ICONST, 7)
    b.emit(Op.GOTO, "join")
    b.label("push_two")
    b.emit(Op.ICONST, 1)
    b.emit(Op.ICONST, 2)
    b.label("join")
    b.emit(Op.POP)
    b.emit(Op.RETURN)
    with pytest.raises(VerifyError, match="inconsistent stack depth"):
        verify(b.assemble())


def test_local_slot_out_of_range():
    code = _code("load 3\npop\nreturn\n", max_locals=2)
    with pytest.raises(VerifyError, match="max_locals"):
        verify(code)


def test_params_counted_in_locals():
    code = _code("load 1\npop\nreturn\n", max_locals=2)
    assert verify(code, is_static=True, nargs=2) == 1
    with pytest.raises(VerifyError, match="parameter slots"):
        verify(code, is_static=False, nargs=2)  # needs 3 slots


def test_handler_entered_with_one_value():
    b = CodeBuilder()
    b.label("s")
    b.emit(Op.ICONST, 1)
    b.emit(Op.POP)
    b.label("e")
    b.emit(Op.GOTO, "out")
    b.label("h")
    b.emit(Op.POP)          # the exception object
    b.label("out")
    b.emit(Op.RETURN)
    b.exception_region("s", "e", "h")
    assert verify(b.assemble()) >= 1


def test_invoke_stack_effect_resolution():
    static = ins(Op.INVOKESTATIC, "Math.imax/2/1")
    assert stack_effect(static) == (2, 1)
    virtual = ins(Op.INVOKEVIRTUAL, "Thing.poke/1/0")
    assert stack_effect(virtual) == (2, 0)  # receiver + 1 arg


def test_invoke_underflow():
    code = _code("""
        iconst 1
        invokestatic Math.imax/2/1
        pop
        return
    """)
    with pytest.raises(VerifyError, match="pops 2"):
        verify(code)


def test_vreturn_requires_value():
    code = _code("vreturn\n")
    with pytest.raises(VerifyError):
        verify(code)


def test_unreachable_code_is_ignored():
    code = _code("""
        return
        iadd
    """)
    assert verify(code) == 0


def test_branch_target_merges_consistent_loop():
    code = _code("""
        iconst 0
        store 0
      top:
        load 0
        iconst 100
        if_icmp ge done
        iinc 0 1
        goto top
      done:
        return
    """, max_locals=1)
    assert verify(code) == 2

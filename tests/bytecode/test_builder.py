"""CodeBuilder: labels, locals, exception regions."""

import pytest

from repro.bytecode.builder import CodeBuilder
from repro.bytecode.opcodes import Op
from repro.errors import BytecodeError


def test_label_resolution():
    b = CodeBuilder()
    b.emit(Op.GOTO, "end")
    b.emit(Op.NOP)
    b.label("end")
    b.emit(Op.RETURN)
    code = b.assemble()
    assert code.instructions[0].operands == (2,)


def test_backward_label():
    b = CodeBuilder()
    b.label("top")
    b.emit(Op.NOP)
    b.emit(Op.GOTO, "top")
    code = b.assemble()
    assert code.instructions[1].operands == (0,)


def test_undefined_label():
    b = CodeBuilder()
    b.emit(Op.GOTO, "nowhere")
    with pytest.raises(BytecodeError, match="undefined label"):
        b.assemble()


def test_duplicate_label():
    b = CodeBuilder()
    b.label("x")
    with pytest.raises(BytecodeError, match="defined twice"):
        b.label("x")


def test_numeric_target_out_of_range():
    b = CodeBuilder()
    b.emit(Op.GOTO, 99)
    with pytest.raises(BytecodeError, match="out of range"):
        b.assemble()


def test_reserve_local_sequence():
    b = CodeBuilder()
    assert b.reserve_local("a") == 0
    assert b.reserve_local() == 1
    assert b.reserve_local("b") == 2
    assert b.local("a") == 0
    assert b.local("b") == 2
    assert b.max_locals == 3


def test_duplicate_named_local():
    b = CodeBuilder()
    b.reserve_local("x")
    with pytest.raises(BytecodeError):
        b.reserve_local("x")


def test_unknown_local():
    with pytest.raises(BytecodeError):
        CodeBuilder().local("ghost")


def test_min_locals():
    b = CodeBuilder()
    b.emit(Op.RETURN)
    assert b.assemble(min_locals=5).max_locals == 5


def test_exception_region_resolution():
    b = CodeBuilder()
    b.label("start")
    b.emit(Op.NOP)
    b.label("end")
    b.emit(Op.RETURN)
    b.label("handler")
    b.emit(Op.POP)
    b.emit(Op.RETURN)
    b.exception_region("start", "end", "handler", "IOException")
    code = b.assemble()
    row = code.exception_table[0]
    assert (row.start_pc, row.end_pc, row.handler_pc) == (0, 1, 2)
    assert row.class_name == "IOException"


def test_exception_region_undefined_label():
    b = CodeBuilder()
    b.emit(Op.RETURN)
    b.exception_region("a", "b", "c")
    with pytest.raises(BytecodeError, match="undefined label"):
        b.assemble()


def test_inverted_exception_region():
    b = CodeBuilder()
    b.label("end")
    b.emit(Op.NOP)
    b.label("start")
    b.emit(Op.RETURN)
    b.label("h")
    b.emit(Op.RETURN)
    b.exception_region("start", "end", "h")
    with pytest.raises(BytecodeError, match="inverted"):
        b.assemble()


def test_fresh_labels_are_unique():
    b = CodeBuilder()
    names = {b.fresh_label("L") for _ in range(10)}
    assert len(names) == 10


def test_pc_property_tracks_emission():
    b = CodeBuilder()
    assert b.pc == 0
    b.emit(Op.NOP)
    assert b.pc == 1

"""Opcode metadata invariants."""

import pytest

from repro.bytecode.opcodes import (
    ARRAY_TYPES,
    CMP_OPS,
    MNEMONIC_TO_OP,
    OP_INFO,
    Op,
    OperandKind,
    compare,
)


def test_every_opcode_has_info():
    assert set(OP_INFO) == set(Op)


def test_mnemonics_are_unique_and_complete():
    assert len(MNEMONIC_TO_OP) == len(Op)
    for op in Op:
        assert MNEMONIC_TO_OP[op.value] is op


def test_ends_block_implies_control_flow():
    for op, info in OP_INFO.items():
        if info.ends_block:
            assert info.is_control_flow, op


def test_branches_are_control_flow():
    for op, info in OP_INFO.items():
        if info.is_branch:
            assert info.is_control_flow, op


def test_conditional_branches_do_not_end_block():
    for op, info in OP_INFO.items():
        if info.is_branch and op is not Op.GOTO:
            assert not info.ends_block, op


def test_invokes_have_variable_stack_effect():
    for op in (Op.INVOKEVIRTUAL, Op.INVOKESPECIAL, Op.INVOKESTATIC):
        assert OP_INFO[op].pops == -1
        assert OP_INFO[op].is_control_flow


def test_fixed_stack_effects_are_sane():
    for op, info in OP_INFO.items():
        if info.pops >= 0:
            assert 0 <= info.pops <= 3, op
            assert 0 <= info.pushes <= 3, op


def test_label_operands_only_on_branches():
    for op, info in OP_INFO.items():
        has_label = OperandKind.LABEL in info.operand_kinds
        assert has_label == info.is_branch, op


@pytest.mark.parametrize("op,a,b,expected", [
    ("eq", 3, 3, True), ("eq", 3, 4, False),
    ("ne", 3, 4, True), ("ne", 3, 3, False),
    ("lt", 1, 2, True), ("lt", 2, 2, False),
    ("le", 2, 2, True), ("le", 3, 2, False),
    ("gt", 3, 2, True), ("gt", 2, 2, False),
    ("ge", 2, 2, True), ("ge", 1, 2, False),
])
def test_compare(op, a, b, expected):
    assert compare(op, a, b) is expected


def test_compare_strings():
    assert compare("lt", "abc", "abd")
    assert compare("eq", "x", "x")


def test_compare_rejects_unknown_operator():
    with pytest.raises(ValueError):
        compare("spaceship", 1, 2)


def test_cmp_ops_and_array_types_frozen():
    assert CMP_OPS == ("eq", "ne", "lt", "le", "gt", "ge")
    assert ARRAY_TYPES == ("int", "float", "str", "ref")

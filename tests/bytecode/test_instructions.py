"""Instruction construction and structural validation."""

import pytest

from repro.bytecode.instructions import Code, ExceptionEntry, ins
from repro.bytecode.opcodes import Op
from repro.errors import BytecodeError


def test_valid_instruction():
    i = ins(Op.ICONST, 42)
    assert i.op is Op.ICONST
    assert i.operands == (42,)


def test_operand_count_mismatch():
    with pytest.raises(BytecodeError, match="expects 1 operand"):
        ins(Op.ICONST)
    with pytest.raises(BytecodeError, match="expects 0 operand"):
        ins(Op.POP, 1)


def test_iconst_rejects_non_int():
    with pytest.raises(BytecodeError):
        ins(Op.ICONST, 1.5)
    with pytest.raises(BytecodeError):
        ins(Op.ICONST, True)  # bools are not Java ints


def test_fconst_requires_float():
    with pytest.raises(BytecodeError):
        ins(Op.FCONST, 1)
    assert ins(Op.FCONST, 1.0).operands == (1.0,)


def test_sconst_requires_str():
    with pytest.raises(BytecodeError):
        ins(Op.SCONST, 7)


def test_load_rejects_negative_slot():
    with pytest.raises(BytecodeError):
        ins(Op.LOAD, -1)


def test_label_accepts_symbol_or_pc():
    assert ins(Op.GOTO, "loop").operands == ("loop",)
    assert ins(Op.GOTO, 3).operands == (3,)
    with pytest.raises(BytecodeError):
        ins(Op.GOTO, 1.5)


def test_cmp_operand_validation():
    assert ins(Op.IF_ICMP, "lt", 0).operands == ("lt", 0)
    with pytest.raises(BytecodeError):
        ins(Op.IF_ICMP, "spaceship", 0)


def test_array_type_operand_validation():
    assert ins(Op.NEWARRAY, "int")
    with pytest.raises(BytecodeError):
        ins(Op.NEWARRAY, "long")


def test_name_operands_must_be_nonempty():
    with pytest.raises(BytecodeError):
        ins(Op.NEW, "")
    with pytest.raises(BytecodeError):
        ins(Op.GETFIELD, 12)


def test_iinc_shape():
    assert ins(Op.IINC, 2, -1).operands == (2, -1)
    with pytest.raises(BytecodeError):
        ins(Op.IINC, 2)


def test_repr_is_compact():
    assert repr(ins(Op.ICONST, 5)) == "<iconst 5>"
    assert repr(ins(Op.POP)) == "<pop>"


def test_code_len():
    code = Code([ins(Op.NOP), ins(Op.RETURN)], max_locals=0)
    assert len(code) == 2
    assert code.exception_table == []


def test_exception_entry_fields():
    row = ExceptionEntry(0, 5, 7, "IOException")
    assert (row.start_pc, row.end_pc, row.handler_pc) == (0, 5, 7)
    assert ExceptionEntry(0, 1, 2).class_name == "*"

"""Thread lifecycle, virtual ids, scheduling behaviour."""

import pytest

from repro.errors import RestrictionViolation
from repro.runtime.threads import ROOT_VID
from tests.util import run_expect, run_minijava


def test_start_join_is_alive():
    run_expect("""
        class W extends Thread {
            int done;
            void run() { done = 1; }
        }
        class Main {
            static void main(String[] args) {
                W w = new W();
                System.println(w.isAlive());
                w.start();
                w.join();
                System.println(w.isAlive());
                System.println(w.done);
            }
        }
    """, "false", "false", "1")


def test_join_on_unstarted_thread_returns_immediately():
    run_expect("""
        class W extends Thread { }
        class Main {
            static void main(String[] args) {
                W w = new W();
                w.join();
                System.println("ok");
            }
        }
    """, "ok")


def test_double_start_raises():
    result, _, _ = run_minijava("""
        class W extends Thread { void run() { } }
        class Main {
            static void main(String[] args) {
                W w = new W();
                w.start();
                w.start();
            }
        }
    """)
    assert result.uncaught[0][1] == "IllegalStateException"


def test_thread_stop_is_restricted_r1():
    with pytest.raises(RestrictionViolation, match="R1"):
        run_minijava("""
            class W extends Thread { void run() { } }
            class Main {
                static void main(String[] args) {
                    W w = new W();
                    w.start();
                    w.stop();
                }
            }
        """)


def test_virtual_thread_ids_follow_spawn_order():
    result, jvm, _ = run_minijava("""
        class W extends Thread {
            void run() { }
        }
        class Main {
            static void main(String[] args) {
                W a = new W(); W b = new W();
                a.start(); b.start();
                a.join(); b.join();
            }
        }
    """)
    assert result.ok
    vids = sorted(jvm.threads_by_vid)
    assert ROOT_VID in vids
    assert (0, 0) in vids and (0, 1) in vids


def test_nested_spawn_vids():
    result, jvm, _ = run_minijava("""
        class Inner extends Thread {
            void run() { }
        }
        class Outer extends Thread {
            void run() {
                Inner i = new Inner();
                i.start();
                i.join();
            }
        }
        class Main {
            static void main(String[] args) {
                Outer o = new Outer();
                o.start();
                o.join();
            }
        }
    """)
    assert result.ok
    assert (0, 0, 0) in jvm.threads_by_vid  # child of the first child


def test_daemon_thread_does_not_block_exit():
    result, _, env = run_minijava("""
        class Spinner extends Thread {
            void run() {
                while (true) { Thread.yield(); }
            }
        }
        class Main {
            static void main(String[] args) {
                Spinner s = new Spinner();
                s.setDaemon(true);
                s.start();
                System.println("main done");
            }
        }
    """)
    assert result.ok
    assert env.console.lines() == ["main done"]


def test_sleep_orders_by_virtual_time():
    run_expect("""
        class Sleeper extends Thread {
            int ms; String tag;
            Sleeper(int ms, String tag) { this.ms = ms; this.tag = tag; }
            void run() {
                Thread.sleep(ms);
                System.println(tag);
            }
        }
        class Main {
            static void main(String[] args) {
                Sleeper slow = new Sleeper(200, "slow");
                Sleeper fast = new Sleeper(50, "fast");
                slow.start(); fast.start();
                slow.join(); fast.join();
            }
        }
    """, "fast", "slow")


def test_uncaught_exception_kills_thread_only():
    result, _, env = run_minijava("""
        class Bomb extends Thread {
            void run() { throw new RuntimeException("boom"); }
        }
        class Main {
            static void main(String[] args) {
                Bomb b = new Bomb();
                b.start();
                b.join();
                System.println("main survived");
            }
        }
    """)
    assert result.outcome == "completed"
    assert env.console.lines() == ["main survived"]
    assert ("t0.0", "RuntimeException", "boom") in result.uncaught


def test_current_thread_identity():
    run_expect("""
        class Main {
            static void main(String[] args) {
                Thread me = Thread.currentThread();
                System.println(me == Thread.currentThread());
            }
        }
    """, "true")


def test_scheduler_seed_changes_interleaving_of_racy_program():
    source = """
        class Racer extends Thread {
            static String trace = "";
            String tag;
            Racer(String tag) { this.tag = tag; }
            void run() {
                for (int i = 0; i < 50; i++) { trace = trace + tag; }
            }
        }
        class Main {
            static void main(String[] args) {
                Racer a = new Racer("a"); Racer b = new Racer("b");
                a.start(); b.start(); a.join(); b.join();
                System.println(Racer.trace);
            }
        }
    """
    outputs = set()
    for seed in (1, 2, 3, 4, 5):
        _, _, env = run_minijava(source, seed=seed)
        outputs.add(env.console.transcript())
    # The threat model: different schedules -> different interleavings.
    assert len(outputs) > 1


def test_same_seed_is_deterministic():
    source = """
        class Racer extends Thread {
            static int shared;
            void run() {
                for (int i = 0; i < 100; i++) { shared = shared + 1; }
                System.println("at " + shared);
            }
        }
        class Main {
            static void main(String[] args) {
                Racer a = new Racer(); Racer b = new Racer();
                a.start(); b.start(); a.join(); b.join();
                System.println(Racer.shared);
            }
        }
    """
    transcripts = set()
    digests = set()
    for _ in range(3):
        _, jvm, env = run_minijava(source, seed=42)
        transcripts.add(env.console.transcript())
        digests.add(jvm.state_digest())
    assert len(transcripts) == 1
    assert len(digests) == 1

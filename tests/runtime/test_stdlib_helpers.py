"""stdlib helpers and the bytecode-bodied builtin methods."""

from repro.runtime.stdlib import text_of
from repro.runtime.values import JArray, JObject
from tests.util import run_expect, run_minijava


def test_text_of_scalars():
    assert text_of(None) == "null"
    assert text_of(42) == "42"
    assert text_of(-1) == "-1"
    assert text_of(2.5) == "2.5"
    assert text_of("s") == "s"


def test_text_of_references():
    assert text_of(JObject("Foo", {}, 7)) == "Foo@7"
    assert text_of(JArray("int", [], 9)) == "array@9"


def test_throwable_get_message():
    run_expect("""
        class Main {
            static void main(String[] args) {
                Throwable t = new Exception("why not");
                System.println(t.getMessage());
            }
        }
    """, "why not")


def test_exception_message_field_accessible():
    run_expect("""
        class Main {
            static void main(String[] args) {
                Exception e = new Exception("m");
                System.println(e.message);
            }
        }
    """, "m")


def test_runtime_exception_chain_getmessage_inherited():
    run_expect("""
        class Main {
            static void main(String[] args) {
                try { throw new IllegalStateException("oops"); }
                catch (Exception e) { System.println(e.getMessage()); }
            }
        }
    """, "oops")


def test_thread_default_run_is_noop():
    run_expect("""
        class Plain extends Thread { }
        class Main {
            static void main(String[] args) {
                Plain p = new Plain();
                p.start();
                p.join();
                System.println("joined");
            }
        }
    """, "joined")


def test_reference_classes_constructor_and_get():
    run_expect("""
        class Main {
            static void main(String[] args) {
                Object target = new Object();
                WeakReference w = new WeakReference(target);
                System.println(w.get() == target);
            }
        }
    """, "true")


def test_exception_hierarchy_runtime_visible():
    result, jvm, _ = run_minijava(
        "class Main { static void main(String[] args) { } }"
    )
    reg = jvm.registry
    assert reg.is_subtype("NumberFormatException", "IllegalArgumentException")
    assert reg.is_subtype("IllegalArgumentException", "RuntimeException")
    assert reg.is_subtype("RuntimeException", "Exception")
    assert reg.is_subtype("OutOfMemoryError", "Error")
    assert reg.is_subtype("Error", "Throwable")
    assert not reg.is_subtype("Error", "Exception")

"""Monitor data structure invariants."""

from repro.runtime.monitors import AdmissionController, Monitor, get_monitor
from repro.runtime.threads import JavaThread
from repro.runtime.values import JArray, JObject


def test_monitor_initial_state():
    m = Monitor()
    assert m.is_free()
    assert m.owner is None
    assert m.recursion == 0
    assert m.l_id is None
    assert m.l_asn == 0
    assert not m.entry_queue and not m.wait_set


def test_get_monitor_is_lazy_and_cached():
    obj = JObject("X", {}, 1)
    assert obj.monitor is None
    m = get_monitor(obj)
    assert obj.monitor is m
    assert get_monitor(obj) is m


def test_arrays_have_monitors_too():
    arr = JArray("int", [1, 2], 3)
    assert get_monitor(arr) is arr.monitor


def test_is_held_by():
    m = Monitor()
    t = JavaThread((0,), None)
    assert not m.is_held_by(t)
    m.owner = t
    assert m.is_held_by(t)
    assert not m.is_free()


def test_default_admission_controller_admits_everyone():
    ctrl = AdmissionController()
    t = JavaThread((0,), None)
    m = Monitor()
    assert ctrl.may_acquire(t, m) is True
    ctrl.on_acquired(t, m)   # no-ops must not raise
    ctrl.on_released(t, m)


def test_monitor_repr_mentions_owner():
    m = Monitor()
    assert "owner=-" in repr(m)
    t = JavaThread((0, 1), None)
    m.owner = t
    assert "t0.1" in repr(m)

"""Frame construction and invariants."""

import pytest

from repro.bytecode.assembler import assemble
from repro.classfile.model import JMethod
from repro.runtime.frames import Frame


def _method(max_locals=4, nargs=1, static=False):
    code = assemble("load 0\npop\nreturn\n", max_locals=max_locals)
    return JMethod("m", nargs, False, code, is_static=static)


def test_args_fill_leading_slots():
    frame = Frame(_method(), ["receiver", 42])
    assert frame.locals[:2] == ["receiver", 42]
    assert frame.locals[2:] == [None, None]


def test_frame_starts_at_pc_zero_with_empty_stack():
    frame = Frame(_method(), [None])
    assert frame.pc == 0
    assert frame.stack == []
    assert frame.sync_object is None
    assert frame.held_monitors == []


def test_push_pop():
    frame = Frame(_method(), [None])
    frame.push(1)
    frame.push("two")
    assert frame.pop() == "two"
    assert frame.pop() == 1


def test_native_methods_never_get_frames():
    native = JMethod("n", 0, False, is_native=True)
    with pytest.raises(AssertionError):
        Frame(native, [])


def test_repr_names_method_and_pc():
    frame = Frame(_method(), [None])
    assert "m" in repr(frame)
    assert "pc=0" in repr(frame)

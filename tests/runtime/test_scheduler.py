"""Scheduler unit behaviour: quanta, queues, timers, liveness."""

import pytest

from repro.errors import DeadlockError
from repro.runtime.scheduler import ScheduleController, Scheduler, SliceEnd
from repro.runtime.threads import JavaThread, ThreadState


def _scheduler(controller=None):
    clock = {"now": 0.0}
    sched = Scheduler(lambda: clock["now"], controller)
    return sched, clock


def _runnable(vid=(0,), **kw):
    t = JavaThread(vid, None, **kw)
    t.state = ThreadState.RUNNABLE
    return t


def test_quantum_jitter_is_seeded():
    a = ScheduleController(seed=1, quantum_base=50, quantum_jitter=20)
    b = ScheduleController(seed=1, quantum_base=50, quantum_jitter=20)
    c = ScheduleController(seed=2, quantum_base=50, quantum_jitter=20)
    t = _runnable()
    seq_a = [a.quantum(t) for _ in range(20)]
    seq_b = [b.quantum(t) for _ in range(20)]
    seq_c = [c.quantum(t) for _ in range(20)]
    assert seq_a == seq_b
    assert seq_a != seq_c
    assert all(50 <= q <= 70 for q in seq_a)


def test_zero_jitter_is_fixed_quantum():
    ctrl = ScheduleController(seed=0, quantum_base=42, quantum_jitter=0)
    assert {ctrl.quantum(_runnable()) for _ in range(5)} == {42}


def test_pick_skips_stale_queue_entries():
    sched, _ = _scheduler()
    t1, t2 = _runnable((0,)), _runnable((0, 0))
    sched.register(t1)
    sched.register(t2)
    sched.make_runnable(t1)
    sched.make_runnable(t2)
    t1.state = ThreadState.BLOCKED   # went stale while queued
    assert sched.pick() is t2


def test_pick_counts_reschedules_only_on_switch():
    sched, _ = _scheduler()
    t1 = _runnable()
    sched.register(t1)
    sched.make_runnable(t1)
    assert sched.pick() is t1
    assert sched.reschedules == 1
    sched.requeue_current(t1)
    assert sched.pick() is t1
    assert sched.reschedules == 1   # same thread: no switch


def test_on_switch_receives_previous_and_reason():
    calls = []

    class Spy(ScheduleController):
        def on_switch(self, prev, reason, next_thread):
            calls.append((prev, reason, next_thread))

    sched, _ = _scheduler(Spy())
    t1, t2 = _runnable((0,)), _runnable((0, 0))
    for t in (t1, t2):
        sched.register(t)
        sched.make_runnable(t)
    sched.pick()
    sched.last_reason = SliceEnd.QUANTUM
    sched.requeue_current(t1)
    sched.pick()
    assert calls[0] == (None, None, t1)
    assert calls[1] == (t1, SliceEnd.QUANTUM, t2)


def test_make_runnable_ignores_terminated():
    sched, _ = _scheduler()
    t = JavaThread((0,), None)
    t.state = ThreadState.TERMINATED
    sched.register(t)
    sched.make_runnable(t)
    assert not sched.runnable


def test_make_runnable_deduplicates():
    sched, _ = _scheduler()
    t = _runnable()
    sched.register(t)
    sched.make_runnable(t)
    sched.make_runnable(t)
    assert len(sched.runnable) == 1


def test_timers_wake_in_virtual_time():
    sched, clock = _scheduler()
    t = JavaThread((0,), None)
    t.state = ThreadState.TIMED_WAITING
    t.wakeup_time = 100.0
    sched.register(t)

    class _Sync:
        woken = []

        def timeout_waiter(self, thread):
            self.woken.append(thread)

    sync = _Sync()
    sched.wake_expired_timers(sync)
    assert sync.woken == []
    clock["now"] = 150.0
    sched.wake_expired_timers(sync)
    assert sync.woken == [t]
    assert sched.earliest_wakeup() == 100.0


def test_live_application_threads_excludes_daemons_and_system():
    sched, _ = _scheduler()
    app = _runnable((0,))
    daemon = _runnable((0, 0), is_daemon=True)
    system = _runnable((0, 1), is_system=True)
    for t in (app, daemon, system):
        sched.register(t)
    assert sched.live_application_threads() == [app]


def test_assert_progress_possible():
    sched, _ = _scheduler()
    t = JavaThread((0,), None)
    t.state = ThreadState.BLOCKED
    sched.register(t)
    with pytest.raises(DeadlockError, match="blocked"):
        sched.assert_progress_possible()
    t.state = ThreadState.TIMED_WAITING
    sched.assert_progress_possible()   # timers can still fire
    t.state = ThreadState.TERMINATED
    sched.assert_progress_possible()   # nothing alive: no deadlock

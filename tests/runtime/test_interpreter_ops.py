"""Bytecode semantics, exercised through small assembled programs."""

import pytest

from repro.errors import LinkageError, ReproError
from tests.util import run_asm_main


def _out(body, max_locals=4):
    result, jvm, env = run_asm_main(body, max_locals=max_locals)
    assert result.ok, result.uncaught
    return env.console.lines()


def _print_int(expr_asm):
    return _out(f"{expr_asm}\ni2s\ninvokestatic System.println/1/0\nreturn\n")


def test_int_arithmetic():
    assert _print_int("iconst 7\niconst 3\niadd") == ["10"]
    assert _print_int("iconst 7\niconst 3\nisub") == ["4"]
    assert _print_int("iconst 7\niconst 3\nimul") == ["21"]
    assert _print_int("iconst 7\niconst 3\nidiv") == ["2"]
    assert _print_int("iconst 7\niconst 3\nirem") == ["1"]
    assert _print_int("iconst 7\nineg") == ["-7"]


def test_int_overflow_wraps():
    assert _print_int("iconst 2147483647\niconst 1\niadd") == ["-2147483648"]


def test_bitwise_ops():
    assert _print_int("iconst 12\niconst 10\niand") == ["8"]
    assert _print_int("iconst 12\niconst 10\nior") == ["14"]
    assert _print_int("iconst 12\niconst 10\nixor") == ["6"]
    assert _print_int("iconst 1\niconst 4\nishl") == ["16"]
    assert _print_int("iconst -8\niconst 1\nishr") == ["-4"]
    assert _print_int("iconst -1\niconst 28\niushr") == ["15"]


def test_float_arithmetic_and_conversions():
    assert _out("""
        fconst 2.5
        fconst 1.5
        fadd
        f2i
        i2s
        invokestatic System.println/1/0
        iconst 3
        i2f
        fconst 2.0
        fdiv
        f2s
        invokestatic System.println/1/0
        return
    """) == ["4", "1.5"]


def test_float_div_by_zero_is_infinite_not_trap():
    lines = _out("""
        fconst 1.0
        fconst 0.0
        fdiv
        f2s
        invokestatic System.println/1/0
        return
    """)
    assert lines == ["inf"]


def test_string_ops():
    assert _out("""
        sconst "foo"
        sconst "bar"
        sconcat
        invokestatic System.println/1/0
        sconst "42"
        s2i
        iconst 1
        iadd
        i2s
        invokestatic System.println/1/0
        return
    """) == ["foobar", "43"]


def test_s2i_failure_raises_java_exception():
    result, _, env = run_asm_main("""
        sconst "nope"
        s2i
        pop
        return
    """)
    assert result.uncaught
    assert result.uncaught[0][1] == "NumberFormatException"


def test_locals_and_iinc():
    assert _out("""
        iconst 5
        store 0
        iinc 0 3
        load 0
        i2s
        invokestatic System.println/1/0
        return
    """) == ["8"]


def test_stack_manipulation():
    assert _print_int("iconst 1\niconst 2\nswap\nisub") == ["1"]
    assert _print_int("iconst 3\ndup\nimul") == ["9"]
    # dup_x1: [a b] -> [b a b]
    assert _out("""
        iconst 2
        iconst 5
        dup_x1
        pop
        pop
        i2s
        invokestatic System.println/1/0
        return
    """) == ["5"]


def test_conditionals():
    assert _out("""
        iconst 1
        if ne yes
        sconst "no"
        goto done
      yes:
        sconst "yes"
      done:
        invokestatic System.println/1/0
        return
    """) == ["yes"]


def test_null_checks_raise_npe():
    for body in (
        "aconst_null\ngetfield x\npop\nreturn",
        "aconst_null\narraylength\npop\nreturn",
        "aconst_null\niconst 0\narrload\npop\nreturn",
        "aconst_null\nmonitorenter\nreturn",
    ):
        result, _, _ = run_asm_main(body)
        assert result.uncaught, body
        assert result.uncaught[0][1] == "NullPointerException", body


def test_div_by_zero():
    result, _, _ = run_asm_main("iconst 1\niconst 0\nidiv\npop\nreturn")
    assert result.uncaught[0][1] == "ArithmeticException"


def test_arrays():
    assert _out("""
        iconst 3
        newarray int
        store 0
        load 0
        iconst 1
        iconst 42
        arrstore
        load 0
        iconst 1
        arrload
        i2s
        invokestatic System.println/1/0
        load 0
        arraylength
        i2s
        invokestatic System.println/1/0
        return
    """) == ["42", "3"]


def test_array_defaults():
    assert _out("""
        iconst 2
        newarray str
        iconst 0
        arrload
        sconst "<empty>"
        sconcat
        invokestatic System.println/1/0
        return
    """) == ["<empty>"]


def test_array_index_out_of_bounds():
    result, _, _ = run_asm_main("""
        iconst 2
        newarray int
        iconst 5
        arrload
        pop
        return
    """)
    assert result.uncaught[0][1] == "ArrayIndexOutOfBoundsException"


def test_negative_array_size():
    result, _, _ = run_asm_main("iconst -1\nnewarray int\npop\nreturn")
    assert result.uncaught[0][1] == "NegativeArraySizeException"


def test_new_object_and_fields():
    from repro.classfile.model import JClass, JField
    box = JClass("Box", "Object")
    box.add_field(JField("value", "int"))
    lines_result = run_asm_main("""
        new Box
        store 0
        load 0
        iconst 99
        putfield value
        load 0
        getfield value
        i2s
        invokestatic System.println/1/0
        return
    """, extra_classes=[box])
    result, _, env = lines_result
    assert result.ok
    assert env.console.lines() == ["99"]


def test_getfield_unknown_field_is_internal_error():
    with pytest.raises(LinkageError):
        run_asm_main("""
            new Object
            dup
            invokespecial Object.<init>/0/0
            getfield ghost
            pop
            return
        """)


def test_instanceof_and_checkcast():
    assert _out("""
        new Thread
        instanceof Object
        i2s
        invokestatic System.println/1/0
        new Object
        instanceof Thread
        i2s
        invokestatic System.println/1/0
        aconst_null
        instanceof Object
        i2s
        invokestatic System.println/1/0
        return
    """) == ["1", "0", "0"]


def test_checkcast_failure():
    result, _, _ = run_asm_main("""
        new Object
        checkcast Thread
        pop
        return
    """)
    assert result.uncaught[0][1] == "ClassCastException"


def test_checkcast_null_passes():
    result, _, _ = run_asm_main("aconst_null\ncheckcast Thread\npop\nreturn")
    assert result.ok


def test_operand_stack_underflow_caught_by_verifier():
    # The verifier rejects underflowing bodies before they can run.
    with pytest.raises(ReproError, match="pops 1"):
        run_asm_main("pop\nreturn")

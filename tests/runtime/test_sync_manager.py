"""SyncManager unit behaviour: admission, parking, counters."""

import pytest

from repro.errors import RestrictionViolation
from repro.runtime.monitors import AdmissionController, get_monitor
from repro.runtime.scheduler import Scheduler
from repro.runtime.sync import EnterResult, SyncManager
from repro.runtime.threads import JavaThread, ThreadState
from repro.runtime.values import JObject


def _setup():
    sched = Scheduler(lambda: 0.0)
    sync = SyncManager(sched)
    return sched, sync


def _thread(vid=(0,)):
    t = JavaThread(vid, None)
    t.state = ThreadState.RUNNABLE
    return t


def _obj(oid=1):
    return JObject("Object", {}, oid)


def test_acquire_free_monitor():
    _, sync = _setup()
    t, o = _thread(), _obj()
    assert sync.enter(t, o) is EnterResult.ACQUIRED
    m = o.monitor
    assert m.owner is t
    assert m.recursion == 1
    assert (t.t_asn, t.mon_cnt, m.l_asn) == (1, 1, 1)
    assert sync.total_acquisitions == 1


def test_recursive_acquire_does_not_log_a_new_acquisition():
    _, sync = _setup()
    t, o = _thread(), _obj()
    sync.enter(t, o)
    sync.enter(t, o)
    m = o.monitor
    assert m.recursion == 2
    assert t.t_asn == 1            # still one logical acquisition
    assert t.mon_cnt == 2          # but two monitor events
    assert sync.total_acquisitions == 1


def test_contended_enter_blocks_and_release_wakes():
    sched, sync = _setup()
    a, b, o = _thread((0,)), _thread((0, 0)), _obj()
    sched.register(a)
    sched.register(b)
    sync.enter(a, o)
    assert sync.enter(b, o) is EnterResult.BLOCKED
    assert b.state is ThreadState.BLOCKED
    assert b in o.monitor.entry_queue

    assert sync.exit(a, o) is True
    assert o.monitor.owner is None
    assert b.state is ThreadState.RUNNABLE   # woken to retry


def test_exit_by_non_owner_fails():
    _, sync = _setup()
    a, b, o = _thread((0,)), _thread((0, 0)), _obj()
    sync.enter(a, o)
    assert sync.exit(b, o) is False
    assert sync.exit(b, _obj(2)) is False    # no monitor at all


def test_admission_controller_can_park():
    class Veto(AdmissionController):
        allow = False

        def may_acquire(self, thread, monitor):
            return self.allow

    sched, sync = _setup()
    veto = Veto()
    sync.admission = veto
    t, o = _thread(), _obj()
    sched.register(t)
    assert sync.enter(t, o) is EnterResult.PARKED
    assert t.state is ThreadState.PARKED
    assert sync.parked_threads == [t]

    veto.allow = True
    sync.reevaluate_parked()
    assert t.state is ThreadState.RUNNABLE   # retries when scheduled
    assert sync.enter(t, o) is EnterResult.ACQUIRED


def test_wait_releases_fully_and_reenter_restores_recursion():
    sched, sync = _setup()
    t, o = _thread(), _obj()
    sched.register(t)
    sync.enter(t, o)
    sync.enter(t, o)          # recursion 2
    assert sync.wait(t, o, None) is True
    m = o.monitor
    assert m.owner is None
    assert t in m.wait_set
    assert t.saved_recursion == 2
    assert t.state is ThreadState.WAITING

    waker = _thread((0, 0))
    sched.register(waker)
    sync.enter(waker, o)
    assert sync.notify(waker, o, all_waiters=False) is True
    assert t.reacquiring
    sync.exit(waker, o)

    assert sync.reenter_after_wait(t, o) is EnterResult.ACQUIRED
    assert m.owner is t
    assert m.recursion == 2


def test_wait_requires_ownership():
    _, sync = _setup()
    t, o = _thread(), _obj()
    assert sync.wait(t, o, None) is False
    assert sync.notify(t, o, all_waiters=True) is False


def test_notify_fifo_single():
    sched, sync = _setup()
    owner = _thread((0,))
    w1, w2 = _thread((0, 0)), _thread((0, 1))
    for t in (owner, w1, w2):
        sched.register(t)
    o = _obj()
    # both wait (each must own the monitor first)
    for w in (w1, w2):
        sync.enter(w, o)
        sync.wait(w, o, None)
    sync.enter(owner, o)
    sync.notify(owner, o, all_waiters=False)
    assert w1.reacquiring and not w2.reacquiring   # FIFO


def test_notify_wakes_all_flag():
    sched, sync = _setup()
    sync.notify_wakes_all = True
    owner = _thread((0,))
    w1, w2 = _thread((0, 0)), _thread((0, 1))
    for t in (owner, w1, w2):
        sched.register(t)
    o = _obj()
    for w in (w1, w2):
        sync.enter(w, o)
        sync.wait(w, o, None)
    sync.enter(owner, o)
    sync.notify(owner, o, all_waiters=False)   # behaves like notifyAll
    assert w1.reacquiring and w2.reacquiring


def test_timed_wait_sets_deadline():
    sched, sync = _setup()
    t, o = _thread(), _obj()
    sched.register(t)
    sync.enter(t, o)
    sync.wait(t, o, 500)
    assert t.state is ThreadState.TIMED_WAITING
    assert t.wakeup_time == 500.0


def test_timeout_waiter_leaves_wait_set():
    sched, sync = _setup()
    t, o = _thread(), _obj()
    sched.register(t)
    sync.enter(t, o)
    sync.wait(t, o, 100)
    sync.timeout_waiter(t)
    assert t not in o.monitor.wait_set
    assert t.reacquiring
    assert t.state is ThreadState.RUNNABLE


def test_forbid_sync_raises_restriction():
    _, sync = _setup()
    t, o = _thread(), _obj()
    t.forbid_sync = True
    with pytest.raises(RestrictionViolation):
        sync.enter(t, o)


def test_monitor_statistics():
    _, sync = _setup()
    t = _thread()
    o1, o2 = _obj(1), _obj(2)
    for _ in range(3):
        sync.enter(t, o1)
        sync.exit(t, o1)
    sync.enter(t, o2)
    assert sync.monitors_created == 2
    assert sync.largest_l_asn == 3
    assert sync.total_acquisitions == 4

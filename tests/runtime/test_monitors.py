"""Monitor semantics: mutual exclusion, recursion, wait/notify."""

import pytest

from repro.errors import DeadlockError
from repro.runtime.jvm import JVMConfig
from tests.util import run_expect, run_minijava


def test_synchronized_method_mutual_exclusion():
    run_expect("""
        class Counter {
            int n;
            synchronized void add() { n = n + 1; }
            synchronized int get() { return n; }
        }
        class Worker extends Thread {
            Counter c;
            Worker(Counter c) { this.c = c; }
            void run() { for (int i = 0; i < 400; i++) { c.add(); } }
        }
        class Main {
            static void main(String[] args) {
                Counter c = new Counter();
                Worker a = new Worker(c); Worker b = new Worker(c);
                a.start(); b.start(); a.join(); b.join();
                System.println(c.get());
            }
        }
    """, "800")


def test_monitor_recursion():
    run_expect("""
        class R {
            synchronized int outer() { return inner() + 1; }
            synchronized int inner() { return 10; }
        }
        class Main {
            static void main(String[] args) {
                System.println(new R().outer());
            }
        }
    """, "11")


def test_synchronized_block_released_on_exception():
    run_expect("""
        class Main {
            static Object lock = new Object();
            static void boom() {
                synchronized (lock) { throw new RuntimeException("x"); }
            }
            static void main(String[] args) {
                try { boom(); } catch (RuntimeException e) { }
                synchronized (lock) { System.println("reacquired"); }
            }
        }
    """, "reacquired")


def test_synchronized_method_released_on_exception():
    run_expect("""
        class R {
            synchronized void boom() { throw new RuntimeException("x"); }
            synchronized String ok() { return "ok"; }
        }
        class Main {
            static void main(String[] args) {
                R r = new R();
                try { r.boom(); } catch (RuntimeException e) { }
                System.println(r.ok());
            }
        }
    """, "ok")


def test_wait_notify_producer_consumer():
    run_expect("""
        class Cell {
            int value;
            boolean full;
            synchronized void put(int v) {
                while (full) { this.wait(); }
                value = v; full = true;
                this.notifyAll();
            }
            synchronized int take() {
                while (!full) { this.wait(); }
                full = false;
                this.notifyAll();
                return value;
            }
        }
        class Producer extends Thread {
            Cell cell; int n;
            Producer(Cell c, int n) { cell = c; this.n = n; }
            void run() { for (int i = 1; i <= n; i++) { cell.put(i); } }
        }
        class Main {
            static void main(String[] args) {
                Cell cell = new Cell();
                Producer p = new Producer(cell, 5);
                p.start();
                int sum = 0;
                for (int i = 0; i < 5; i++) { sum = sum + cell.take(); }
                p.join();
                System.println(sum);
            }
        }
    """, "15")


def test_wait_without_monitor_raises():
    result, _, _ = run_minijava("""
        class Main {
            static void main(String[] args) {
                Object o = new Object();
                o.wait();
            }
        }
    """)
    assert result.uncaught[0][1] == "IllegalMonitorStateException"


def test_notify_without_monitor_raises():
    result, _, _ = run_minijava("""
        class Main {
            static void main(String[] args) {
                Object o = new Object();
                o.notify();
            }
        }
    """)
    assert result.uncaught[0][1] == "IllegalMonitorStateException"


def test_notify_wakes_single_waiter_fifo():
    run_expect("""
        class Gate {
            int woken;
            synchronized void park(int id) {
                this.wait();
                woken = woken * 10 + id;
            }
            synchronized void release() { this.notify(); }
            synchronized int order() { return woken; }
        }
        class Waiter extends Thread {
            Gate g; int id;
            Waiter(Gate g, int id) { this.g = g; this.id = id; }
            void run() { g.park(id); }
        }
        class Main {
            static void main(String[] args) {
                Gate g = new Gate();
                Waiter a = new Waiter(g, 1);
                Waiter b = new Waiter(g, 2);
                a.start();
                // give a a head start so it waits first
                while (!a.isAlive()) { Thread.yield(); }
                Thread.sleep(5);
                b.start();
                Thread.sleep(5);
                g.release();
                a.join();
                g.release();
                b.join();
                System.println(g.order());
            }
        }
    """, "12")


def test_timed_wait_times_out():
    run_expect("""
        class Main {
            static void main(String[] args) {
                Object o = new Object();
                synchronized (o) {
                    o.timedWait(5);
                }
                System.println("woke");
            }
        }
    """, "woke")


def test_deadlock_detected():
    source = """
        class Main {
            static void main(String[] args) {
                Object o = new Object();
                synchronized (o) { o.wait(); }
            }
        }
    """
    with pytest.raises(DeadlockError):
        run_minijava(source)


def test_two_lock_deadlock_detected():
    source = """
        class Grabber extends Thread {
            Object first; Object second;
            Grabber(Object a, Object b) { first = a; second = b; }
            void run() {
                synchronized (first) {
                    Thread.sleep(5);
                    synchronized (second) { }
                }
            }
        }
        class Main {
            static void main(String[] args) {
                Object a = new Object(); Object b = new Object();
                Grabber g1 = new Grabber(a, b);
                Grabber g2 = new Grabber(b, a);
                g1.start(); g2.start();
                g1.join(); g2.join();
            }
        }
    """
    with pytest.raises(DeadlockError):
        run_minijava(source)


def test_lock_statistics_exposed():
    result, jvm, _ = run_minijava("""
        class Main {
            static void main(String[] args) {
                Object a = new Object(); Object b = new Object();
                for (int i = 0; i < 3; i++) { synchronized (a) { } }
                synchronized (b) { }
            }
        }
    """)
    assert result.ok
    assert jvm.sync.total_acquisitions == 4
    assert jvm.sync.monitors_created == 2
    assert jvm.sync.largest_l_asn == 3

"""Java value semantics: 32-bit arithmetic, type conformance."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.values import (
    JArray,
    JObject,
    conforms,
    describe,
    is_reference,
    java_div,
    java_rem,
    java_shl,
    java_shr,
    java_ushr,
    type_token_of,
    wrap_int,
)

INT_MIN = -(2 ** 31)
INT_MAX = 2 ** 31 - 1


def test_wrap_int_identity_in_range():
    for v in (0, 1, -1, INT_MIN, INT_MAX):
        assert wrap_int(v) == v


def test_wrap_int_overflow():
    assert wrap_int(INT_MAX + 1) == INT_MIN
    assert wrap_int(INT_MIN - 1) == INT_MAX
    assert wrap_int(2 ** 32) == 0
    assert wrap_int(0x9FFFFFFFF) == wrap_int(0xFFFFFFFF)


@given(st.integers())
def test_wrap_int_always_in_range(v):
    assert INT_MIN <= wrap_int(v) <= INT_MAX


@given(st.integers(INT_MIN, INT_MAX), st.integers(INT_MIN, INT_MAX))
def test_wrap_add_matches_two_complement(a, b):
    assert wrap_int(a + b) == wrap_int(wrap_int(a) + wrap_int(b))


def test_java_div_truncates_toward_zero():
    assert java_div(7, 2) == 3
    assert java_div(-7, 2) == -3
    assert java_div(7, -2) == -3
    assert java_div(-7, -2) == 3


def test_java_div_min_int_overflow():
    # Java: Integer.MIN_VALUE / -1 == Integer.MIN_VALUE (wraps).
    assert java_div(INT_MIN, -1) == INT_MIN


def test_java_rem_sign_follows_dividend():
    assert java_rem(7, 3) == 1
    assert java_rem(-7, 3) == -1
    assert java_rem(7, -3) == 1
    assert java_rem(-7, -3) == -1


@given(st.integers(INT_MIN, INT_MAX),
       st.integers(INT_MIN, INT_MAX).filter(lambda b: b != 0))
def test_div_rem_identity(a, b):
    assert wrap_int(java_div(a, b) * b + java_rem(a, b)) == a


def test_shifts_mask_count():
    assert java_shl(1, 33) == 2       # 33 & 31 == 1
    assert java_shr(-8, 1) == -4      # arithmetic
    assert java_ushr(-1, 28) == 0xF   # logical


def test_ushr_zero_count():
    assert java_ushr(-1, 32) == -1    # 32 & 31 == 0


def test_type_tokens():
    assert type_token_of(3) == "int"
    assert type_token_of(True) == "int"
    assert type_token_of(2.5) == "float"
    assert type_token_of("s") == "str"
    assert type_token_of(None) == "ref"
    obj = JObject("Foo", {}, 1)
    arr = JArray("int", [1], 2)
    assert type_token_of(obj) == "ref"
    assert type_token_of(arr) == "ref"
    with pytest.raises(TypeError):
        type_token_of([1, 2])


def test_conforms():
    obj = JObject("Foo", {}, 1)
    assert conforms(1, "int")
    assert not conforms(True, "int")   # bools never flow into fields
    assert conforms(1.0, "float")
    assert not conforms(1, "float")
    assert conforms("x", "str")
    assert conforms(None, "ref")
    assert conforms(obj, "ref")
    assert not conforms(obj, "int")
    assert not conforms(1, "quux")


def test_is_reference():
    assert is_reference(JObject("A", {}, 1))
    assert is_reference(JArray("ref", [], 2))
    assert not is_reference(None)
    assert not is_reference("string")


def test_describe():
    assert describe(None) == "null"
    assert describe(5) == "int 5"
    assert "Foo#3" in describe(JObject("Foo", {}, 3))


def test_array_len_and_repr():
    arr = JArray("float", [0.0] * 4, 9)
    assert len(arr) == 4
    assert "float[4]" in repr(arr)

"""Native interface: registry, annotations, R2/R3/R5 enforcement."""

import pytest

from repro.errors import NativeError
from repro.runtime.natives import (
    JavaThrow,
    NativeContext,
    NativeRegistry,
    NativeSpec,
    call_native,
)
from repro.runtime.stdlib import default_natives
from tests.util import run_expect, run_minijava


def test_registry_lookup_and_duplicates():
    reg = NativeRegistry()
    spec = NativeSpec("X.f/0", lambda ctx, r, a: 1)
    reg.register(spec)
    assert reg.lookup("X.f/0") is spec
    assert reg.has("X.f/0")
    with pytest.raises(NativeError, match="twice"):
        reg.register(NativeSpec("X.f/0", lambda ctx, r, a: 2))
    with pytest.raises(NativeError, match="unsatisfied"):
        reg.lookup("X.g/0")


def test_r5_enforced_at_registration():
    with pytest.raises(NativeError, match="R5"):
        NativeSpec("X.out/0", lambda ctx, r, a: None, is_output=True)
    # idempotent or testable outputs are fine
    NativeSpec("X.out/0", lambda ctx, r, a: None, is_output=True,
               idempotent=True)
    NativeSpec("X.out2/0", lambda ctx, r, a: None, is_output=True,
               testable=True)


def test_nondeterministic_hash_table_contents():
    table = default_natives().nondeterministic_signatures()
    assert "System.currentTimeMillis/0" in table
    assert "Files.readLine/1" in table
    assert "Env.randomInt/1" in table
    assert "Math.sqrt/1" not in table
    assert table == sorted(table)


def test_output_signatures():
    outputs = default_natives().output_signatures()
    assert "System.println/1" in outputs
    assert "Files.write/2" in outputs
    assert "Files.readLine/1" not in outputs


def test_r2_deterministic_native_cannot_read_clock():
    """A native annotated deterministic trips the gate if it reads the
    environment — the paper's R2/R3, enforced mechanically."""
    source = """
        class Main {
            static void main(String[] args) {
                System.println(Strings.length("xx"));
            }
        }
    """
    # Sanity: normal run works.
    result, jvm, _ = run_minijava(source)
    assert result.ok

    # Now a rogue deterministic native that reads the clock.
    rogue = NativeSpec("Rogue.now/0", lambda ctx, r, a: ctx.clock_ms())
    ctx = NativeContext(jvm, jvm.main_thread, rogue)
    with pytest.raises(NativeError, match="R2/R3"):
        rogue.impl(ctx, None, [])


def test_non_output_native_cannot_mutate_environment():
    result, jvm, _ = run_minijava(
        "class Main { static void main(String[] args) { } }"
    )
    rogue = NativeSpec("Rogue.mutate/0",
                       lambda ctx, r, a: ctx.output_target())
    ctx = NativeContext(jvm, jvm.main_thread, rogue)
    with pytest.raises(NativeError, match="R5"):
        rogue.impl(ctx, None, [])


def test_java_throw_becomes_outcome_exception():
    def impl(ctx, receiver, args):
        raise JavaThrow("IOException", "disk on fire")

    spec = NativeSpec("X.f/0", impl)
    outcome = call_native(spec, None, None, [])
    assert outcome.exception == ("IOException", "disk on fire")
    assert outcome.value is None


def test_log_arrays_captures_out_params():
    from repro.runtime.values import JArray

    def impl(ctx, receiver, args):
        args[0].data[0] = 99
        return None

    spec = NativeSpec("X.fill/1", impl, log_arrays=True)
    arr = JArray("int", [0, 0], 1)
    outcome = call_native(spec, None, None, [arr])
    assert outcome.array_results == {0: [99, 0]}


def test_arraycopy():
    run_expect("""
        class Main {
            static void main(String[] args) {
                int[] src = new int[5];
                for (int i = 0; i < 5; i++) { src[i] = i * i; }
                int[] dst = new int[5];
                System.arraycopy(src, 1, dst, 0, 3);
                System.println(dst[0] + "," + dst[1] + "," + dst[2]);
            }
        }
    """, "1,4,9")


def test_arraycopy_bounds_checked():
    result, _, _ = run_minijava("""
        class Main {
            static void main(String[] args) {
                int[] a = new int[2];
                int[] b = new int[2];
                System.arraycopy(a, 0, b, 0, 5);
            }
        }
    """)
    assert result.uncaught[0][1] == "ArrayIndexOutOfBoundsException"


def test_string_natives():
    run_expect("""
        class Main {
            static void main(String[] args) {
                String s = "  Hello World  ";
                System.println(s.trim());
                System.println(s.trim().toUpperCase());
                System.println(Strings.fromChar('A' + 2));
                System.println("banana".indexOf("na"));
                System.println("xy".repeat(3));
            }
        }
    """, "Hello World", "HELLO WORLD", "C", "2", "xyxyxy")


def test_string_hash_matches_java():
    # Java: "Hello".hashCode() == 69609650
    run_expect("""
        class Main {
            static void main(String[] args) {
                System.println("Hello".hashCode());
            }
        }
    """, "69609650")


def test_string_chars_round_trip():
    run_expect("""
        class Main {
            static void main(String[] args) {
                int[] chars = "abc".toChars();
                chars[0] = chars[0] + 1;
                System.println(Strings.fromChars(chars, 3));
            }
        }
    """, "bbc")


def test_math_natives():
    run_expect("""
        class Main {
            static void main(String[] args) {
                System.println((int) Math.sqrt(49.0));
                System.println((int) Math.pow(2.0, 10.0));
                System.println(Math.imax(3, 9) + Math.imin(3, 9));
                System.println((int) Math.floor(2.7));
                System.println((int) Math.fabs(-4.0));
            }
        }
    """, "7", "1024", "12", "2", "4")


def test_env_randomness_is_session_seeded():
    source = """
        class Main {
            static void main(String[] args) {
                System.println(Env.randomInt(1000000));
            }
        }
    """
    _, _, env1 = run_minijava(source)
    _, _, env2 = run_minijava(source)
    # Same session seed -> same draw (determinism per process).
    assert env1.console.transcript() == env2.console.transcript()

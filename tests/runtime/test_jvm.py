"""JVM facade: statics, class init, digests, config guards."""

import pytest

from repro.env.environment import Environment
from repro.errors import LinkageError, ReproError
from repro.minijava import compile_program
from repro.runtime.jvm import JVM, JVMConfig
from repro.runtime.stdlib import default_natives
from tests.util import run_expect, run_minijava


def test_static_fields_shared_across_instances():
    run_expect("""
        class Counter {
            static int total;
            void bump() { total = total + 1; }
        }
        class Main {
            static void main(String[] args) {
                new Counter().bump();
                new Counter().bump();
                System.println(Counter.total);
            }
        }
    """, "2")


def test_static_field_inherited_slot_is_shared():
    run_expect("""
        class Base { static int shared; }
        class Derived extends Base {
            static void poke() { shared = 42; }
        }
        class Main {
            static void main(String[] args) {
                Derived.poke();
                System.println(Base.shared);
            }
        }
    """, "42")


def test_static_initializers_run_before_main():
    run_expect("""
        class Config {
            static int answer = 6 * 7;
            static String name = "config-" + answer;
        }
        class Main {
            static void main(String[] args) {
                System.println(Config.name);
            }
        }
    """, "config-42")


def test_state_digest_deterministic():
    source = """
        class Main {
            static int x;
            static void main(String[] args) { x = 5; }
        }
    """
    digests = {run_minijava(source)[1].state_digest() for _ in range(3)}
    assert len(digests) == 1


def test_state_digest_sensitive_to_heap_contents():
    base = """
        class Main {{
            static int[] data;
            static void main(String[] args) {{
                data = new int[3];
                data[1] = {v};
            }}
        }}
    """
    d1 = run_minijava(base.format(v=1))[1].state_digest()
    d2 = run_minijava(base.format(v=2))[1].state_digest()
    assert d1 != d2


def test_state_digest_handles_cycles():
    result, jvm, _ = run_minijava("""
        class Node { Node next; }
        class Main {
            static Node ring;
            static void main(String[] args) {
                Node a = new Node(); Node b = new Node();
                a.next = b; b.next = a;
                ring = a;
            }
        }
    """)
    assert result.ok
    assert jvm.state_digest()  # terminates and yields a hash


def test_max_instructions_guard():
    config = JVMConfig(max_instructions=10_000)
    with pytest.raises(ReproError, match="instruction limit"):
        run_minijava("""
            class Main {
                static void main(String[] args) {
                    while (true) { }
                }
            }
        """, config=config)


def test_missing_main_class():
    registry = compile_program(
        "class Helper { static int f() { return 1; } }"
    )
    env = Environment()
    jvm = JVM(registry, default_natives(), env.attach("x"))
    with pytest.raises(LinkageError):
        jvm.run("Helper")


def test_main_receives_args_array():
    source = """
        class Main {
            static void main(String[] args) {
                System.println(args.length + ":" + args[0]);
            }
        }
    """
    registry = compile_program(source)
    env = Environment()
    jvm = JVM(registry, default_natives(), env.attach("x"))
    result = jvm.run("Main", ["hello", "world"])
    assert result.ok
    assert env.console.lines() == ["2:hello"]


def test_double_bootstrap_rejected():
    registry = compile_program(
        "class Main { static void main(String[] args) { } }"
    )
    env = Environment()
    jvm = JVM(registry, default_natives(), env.attach("x"))
    jvm.run("Main")
    with pytest.raises(ReproError, match="already bootstrapped"):
        jvm.bootstrap("Main")


def test_identical_initial_state_across_jvm_instances():
    """Two JVMs over the same registry + same seeds are replicas: they
    must produce identical digests after identical runs."""
    source = """
        class Main {
            static int acc;
            static void main(String[] args) {
                for (int i = 0; i < 100; i++) { acc = acc + i; }
            }
        }
    """
    registry = compile_program(source)
    digests = set()
    for _ in range(2):
        env = Environment()
        jvm = JVM(registry, default_natives(), env.attach("p"),
                  JVMConfig(scheduler_seed=9))
        jvm.run("Main")
        digests.add(jvm.state_digest())
    assert len(digests) == 1


def test_out_of_memory_error():
    config = JVMConfig(
        heap_gc_threshold=2_000, heap_max_cells=4_000,
        max_instructions=10_000_000,
    )
    result, _, _ = run_minijava("""
        class Node { Node next; int[] payload; }
        class Main {
            static Node head;
            static void main(String[] args) {
                while (true) {
                    Node n = new Node();
                    n.payload = new int[100];
                    n.next = head;
                    head = n;
                }
            }
        }
    """, config=config)
    assert result.uncaught[0][1] == "OutOfMemoryError"

"""Method invocation: dispatch, constructors, overloads, returns."""

from tests.util import run_expect, run_minijava


def test_virtual_dispatch_uses_dynamic_type():
    run_expect("""
        class Animal { String speak() { return "..."; } }
        class Dog extends Animal { String speak() { return "woof"; } }
        class Main {
            static void main(String[] args) {
                Animal a = new Dog();
                System.println(a.speak());
            }
        }
    """, "woof")


def test_super_call_is_statically_bound():
    run_expect("""
        class Animal { String speak() { return "generic"; } }
        class Dog extends Animal {
            String speak() { return super.speak() + "+woof"; }
        }
        class Main {
            static void main(String[] args) {
                System.println(new Dog().speak());
            }
        }
    """, "generic+woof")


def test_constructor_chains_to_super():
    run_expect("""
        class Base {
            int x;
            Base() { x = 10; }
        }
        class Derived extends Base {
            int y;
            Derived() { y = x + 5; }
        }
        class Main {
            static void main(String[] args) {
                Derived d = new Derived();
                System.println(d.x + "," + d.y);
            }
        }
    """, "10,15")


def test_explicit_super_constructor_args():
    run_expect("""
        class Base {
            int x;
            Base(int x) { this.x = x; }
        }
        class Derived extends Base {
            Derived() { super(7); }
        }
        class Main {
            static void main(String[] args) {
                System.println(new Derived().x);
            }
        }
    """, "7")


def test_overload_by_arity():
    run_expect("""
        class Calc {
            int add(int a) { return a + 1; }
            int add(int a, int b) { return a + b; }
        }
        class Main {
            static void main(String[] args) {
                Calc c = new Calc();
                System.println(c.add(5) + "," + c.add(5, 6));
            }
        }
    """, "6,11")


def test_recursion():
    run_expect("""
        class Main {
            static int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            static void main(String[] args) {
                System.println(fib(15));
            }
        }
    """, "610")


def test_mutual_recursion_across_classes():
    run_expect("""
        class Even {
            static boolean check(int n) {
                if (n == 0) { return true; }
                return Odd.check(n - 1);
            }
        }
        class Odd {
            static boolean check(int n) {
                if (n == 0) { return false; }
                return Even.check(n - 1);
            }
        }
        class Main {
            static void main(String[] args) {
                System.println(Even.check(10) + "," + Even.check(7));
            }
        }
    """, "true,false")


def test_npe_on_null_receiver():
    result, _, _ = run_minijava("""
        class Box { int get() { return 1; } }
        class Main {
            static void main(String[] args) {
                Box b = null;
                System.println(b.get());
            }
        }
    """)
    assert result.uncaught[0][1] == "NullPointerException"


def test_unqualified_instance_call_uses_this():
    run_expect("""
        class Counter {
            int n;
            void bump() { n = n + 1; }
            int twice() { bump(); bump(); return n; }
        }
        class Main {
            static void main(String[] args) {
                System.println(new Counter().twice());
            }
        }
    """, "2")


def test_return_value_discarded_in_statement():
    run_expect("""
        class Main {
            static int noisy() { System.println("called"); return 42; }
            static void main(String[] args) {
                noisy();
                System.println("done");
            }
        }
    """, "called", "done")


def test_object_identity_methods():
    result, _, env = run_minijava("""
        class Main {
            static void main(String[] args) {
                Object a = new Object();
                Object b = new Object();
                System.println(a.equals(a));
                System.println(a.equals(b));
                System.println(a.hashCode() == a.hashCode());
                System.println(a.hashCode() == b.hashCode());
            }
        }
    """)
    assert result.ok
    assert env.console.lines() == ["true", "false", "true", "false"]


def test_to_string_is_class_at_oid():
    result, _, env = run_minijava("""
        class Widget { }
        class Main {
            static void main(String[] args) {
                Widget w = new Widget();
                System.println(w.toString().startsWith("Widget@"));
            }
        }
    """)
    assert result.ok
    assert env.console.lines() == ["true"]

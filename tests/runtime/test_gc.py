"""Garbage collection: reachability, soft/weak references, finalizers."""

import pytest

from repro.errors import RestrictionViolation
from repro.runtime.jvm import JVMConfig
from tests.util import run_expect, run_minijava


def test_collect_frees_garbage():
    result, jvm, _ = run_minijava("""
        class Blob { int[] payload; }
        class Main {
            static void main(String[] args) {
                for (int i = 0; i < 50; i++) {
                    Blob b = new Blob();
                    b.payload = new int[100];
                }
                System.gc();
            }
        }
    """)
    assert result.ok
    assert jvm.collector.stats.collections >= 1
    assert jvm.collector.stats.objects_freed >= 90  # blobs + arrays


def test_reachable_objects_survive():
    run_expect("""
        class Node { Node next; int value; }
        class Main {
            static Node head;
            static void main(String[] args) {
                for (int i = 0; i < 10; i++) {
                    Node n = new Node();
                    n.value = i; n.next = head; head = n;
                }
                System.gc();
                int sum = 0;
                Node n = head;
                while (n != null) { sum = sum + n.value; n = n.next; }
                System.println(sum);
            }
        }
    """, "45")


def test_gc_triggered_by_allocation_pressure():
    config = JVMConfig(heap_gc_threshold=5_000, max_instructions=5_000_000)
    result, jvm, _ = run_minijava("""
        class Main {
            static void main(String[] args) {
                for (int i = 0; i < 100; i++) {
                    int[] junk = new int[100];
                    junk[0] = i;
                }
                System.println("done");
            }
        }
    """, config=config)
    assert result.ok
    assert jvm.collector.stats.collections >= 1


def test_soft_references_strong_by_default():
    """The paper's mitigation (§4.3): soft referents are never collected,
    so cache behaviour cannot diverge between replicas."""
    config = JVMConfig(heap_gc_threshold=4_000, max_instructions=5_000_000)
    result, _, env = run_minijava("""
        class Main {
            static void main(String[] args) {
                SoftReference cache = new SoftReference(new Object());
                for (int i = 0; i < 200; i++) {
                    int[] junk = new int[50];
                    junk[0] = i;
                }
                System.gc();
                System.println(cache.get() != null);
            }
        }
    """, config=config)
    assert result.ok
    assert env.console.lines() == ["true"]


def test_soft_references_cleared_when_mitigation_disabled():
    config = JVMConfig(soft_refs_strong=False, max_instructions=5_000_000)
    result, jvm, env = run_minijava("""
        class Main {
            static void main(String[] args) {
                SoftReference cache = new SoftReference(new Object());
                System.gc();
                System.println(cache.get() != null);
            }
        }
    """, config=config)
    assert result.ok
    assert env.console.lines() == ["false"]
    assert jvm.collector.stats.soft_refs_cleared == 1


def test_weak_reference_cleared_when_unreachable():
    config = JVMConfig(soft_refs_strong=False, max_instructions=5_000_000)
    result, _, env = run_minijava("""
        class Main {
            static void main(String[] args) {
                Object keep = new Object();
                WeakReference alive = new WeakReference(keep);
                WeakReference dead = new WeakReference(new Object());
                System.gc();
                System.println(alive.get() != null);
                System.println(dead.get() != null);
            }
        }
    """, config=config)
    assert result.ok
    assert env.console.lines() == ["true", "false"]


def test_refs_natives_build_references():
    run_expect("""
        class Main {
            static void main(String[] args) {
                Object target = new Object();
                SoftReference s = Refs.soft(target);
                System.println(s.get() == target);
            }
        }
    """, "true")


def test_finalizer_runs_on_collection():
    result, jvm, env = run_minijava("""
        class Tracked {
            static int finalized;
            void finalize() { finalized = finalized + 1; }
        }
        class Main {
            static void main(String[] args) {
                for (int i = 0; i < 5; i++) {
                    Tracked t = new Tracked();
                }
                System.gc();
                System.println(Tracked.finalized);
            }
        }
    """)
    assert result.ok
    # At least the four unreachable ones (the last local may pin one).
    assert int(env.console.lines()[0]) >= 4
    assert jvm.collector.stats.finalizers_run >= 4


def test_finalizer_may_not_touch_monitors():
    source = """
        class Bad {
            static Object lock = new Object();
            void finalize() { synchronized (lock) { } }
        }
        class Main {
            static void main(String[] args) {
                Bad b = new Bad();
                b = null;
                System.gc();
            }
        }
    """
    with pytest.raises(RestrictionViolation, match="finalizer"):
        run_minijava(source)


def test_finalizer_may_not_do_io():
    source = """
        class Bad {
            void finalize() { System.println("side effect!"); }
        }
        class Main {
            static void main(String[] args) {
                Bad b = new Bad();
                b = null;
                System.gc();
            }
        }
    """
    with pytest.raises(RestrictionViolation):
        run_minijava(source)


def test_objects_on_operand_stack_are_roots():
    # An object that exists only on a frame's operand stack must survive.
    run_expect("""
        class Box { int v; }
        class Main {
            static Box mk() {
                Box b = new Box();
                b.v = 7;
                System.gc();
                return b;
            }
            static void main(String[] args) {
                System.println(mk().v);
            }
        }
    """, "7")

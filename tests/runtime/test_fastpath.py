"""Fast-path machinery: pre-decoded streams, inline caches, compiled
superinstruction blocks, cache invalidation on class (re)definition,
and step() as a budget-1 slice.

Observational equivalence between the engines is covered by
``tests/integration/test_engine_equivalence.py``; these tests pin the
mechanisms themselves.
"""

import pytest

from repro.bytecode.assembler import assemble
from repro.classfile.model import JClass
from repro.errors import ReproError
from repro.runtime.frames import Frame
from repro.runtime.interpreter import _InvokeSite
from repro.runtime.jvm import JVM, JVMConfig, StepResult
from repro.runtime.scheduler import SliceEnd
from repro.runtime.stdlib import default_natives, new_program_registry
from repro.runtime.threads import JavaThread, ThreadState
from tests.util import run_minijava

_LOOP_SOURCE = """
class Helper {
    int bias;
    Helper(int b) { this.bias = b; }
    int mix(int x) { return x + this.bias; }
}
class Main {
    static void main() {
        Helper h = new Helper(3);
        int acc = 0;
        for (int i = 0; i < 20; i++) { acc = h.mix(acc); }
        System.println("" + acc);
    }
}
"""


def _main_method(jvm):
    return jvm.registry.resolve("Main").methods[("main", 0)]


def _probe_thread(method):
    thread = JavaThread((-1,), None, name="probe", is_system=True)
    thread.frames.append(Frame(method, []))
    thread.state = ThreadState.RUNNABLE
    return thread


# ----------------------------------------------------------------------
# Decoded streams
# ----------------------------------------------------------------------
def test_code_uids_are_unique():
    a = assemble("return\n", max_locals=1)
    b = assemble("return\n", max_locals=1)
    assert a.uid != b.uid


def test_decoded_streams_cached_per_code():
    result, jvm, _ = run_minijava(_LOOP_SOURCE)
    assert result.ok, result.uncaught
    interp = jvm.interpreter
    code = _main_method(jvm).code
    stream = interp._code_cache.get(code.uid)
    assert stream is not None
    assert len(stream) == len(code.instructions)
    # A fresh frame over the same code reuses the cached list: one
    # probe step attaches the identical object, not a re-decode.
    probe = _probe_thread(_main_method(jvm))
    interp.run_slice(probe, budget=1)
    assert probe.frames[-1].decoded is stream


def test_invoke_sites_fill_monomorphically():
    result, jvm, _ = run_minijava(_LOOP_SOURCE)
    assert result.ok
    sites = [
        arg
        for stream in jvm.interpreter._code_cache.values()
        for (_, _, arg) in stream
        if isinstance(arg, _InvokeSite)
    ]
    assert sites
    # The hot virtual call resolved once and stayed cached on the
    # receiver's dynamic class.
    assert any(site.vclass is not None for site in sites)


# ----------------------------------------------------------------------
# Invalidation on (re)definition
# ----------------------------------------------------------------------
def test_registry_version_bumps_on_register():
    registry = new_program_registry()
    before = registry.version
    registry.register(JClass("Extra", "Object"))
    assert registry.version == before + 1
    registry.register(JClass("Extra2", "Object"))
    assert registry.version == before + 2


def test_redefinition_drops_decoded_streams_and_caches():
    result, jvm, _ = run_minijava(_LOOP_SOURCE)
    assert result.ok
    interp = jvm.interpreter
    method = _main_method(jvm)
    old_stream = interp._code_cache[method.code.uid]

    # A lingering frame holding a cached stream, as a restored replica
    # or a descheduled thread would have.
    scheduler_thread = jvm.scheduler.threads[0]
    frame = Frame(method, [])
    frame.decoded = old_stream
    scheduler_thread.frames.append(frame)

    jvm.registry.register(JClass("Extra", "Object"))
    assert interp._registry_version != jvm.registry.version

    # The next slice entry notices the version bump and rebuilds.
    end = interp.run_slice(_probe_thread(method), budget=1)
    assert end is SliceEnd.BUDGET
    assert frame.decoded is None
    assert interp._registry_version == jvm.registry.version
    rebuilt = interp._code_cache[method.code.uid]
    assert rebuilt is not old_stream

    scheduler_thread.frames.pop()


# ----------------------------------------------------------------------
# Compiled superinstruction blocks
# ----------------------------------------------------------------------
_BLOCK_CONFIG = JVMConfig(engine="block", block_hot_threshold=1)


def test_hot_blocks_compile_and_hit():
    result, jvm, env = run_minijava("""
    class Main {
        static void main() {
            int acc = 0;
            for (int i = 0; i < 50; i++) { acc = acc + i * 2; }
            System.println("" + acc);
        }
    }
    """, config=_BLOCK_CONFIG)
    assert result.ok, result.uncaught
    assert env.console.lines() == ["2450"]
    interp = jvm.interpreter
    assert interp.blocks_compiled > 0
    assert interp.block_cache_hits > interp.blocks_compiled
    stream = interp._code_cache[_main_method(jvm).code.uid]
    compiled = [b for b in stream.blocks.values() if b]
    assert compiled
    # Every compiled block knows its instruction span for the deferred
    # accounting add at block exit.
    assert all(b.size >= 1 for b in compiled)


def test_cold_blocks_stay_uncompiled_below_threshold():
    _, jvm, _ = run_minijava("""
    class Main {
        static void main() {
            int acc = 0;
            for (int i = 0; i < 50; i++) { acc = acc + i; }
        }
    }
    """, config=JVMConfig(engine="block", block_hot_threshold=1_000_000))
    assert jvm.interpreter.blocks_compiled == 0
    assert jvm.interpreter.block_cache_hits == 0


def test_redefinition_drops_compiled_blocks_with_streams():
    """A registry-version bump must drop compiled blocks and decoded
    streams *atomically* — a stale block closing over a dead stream
    would execute superseded code."""
    result, jvm, _ = run_minijava(_LOOP_SOURCE, config=_BLOCK_CONFIG)
    assert result.ok
    interp = jvm.interpreter
    assert interp.blocks_compiled > 0
    method = _main_method(jvm)
    old_stream = interp._code_cache[method.code.uid]
    old_blocks = dict(old_stream.blocks)
    assert any(old_blocks.values())

    jvm.registry.register(JClass("Extra", "Object"))
    end = interp.run_slice(_probe_thread(method), budget=1)
    assert end is SliceEnd.BUDGET
    rebuilt = interp._code_cache[method.code.uid]
    assert rebuilt is not old_stream
    # The rebuilt stream carries no compiled block from before the
    # bump — anything in it was compiled fresh against the new stream
    # (the probe step itself re-warms entry 0 at threshold 1).
    for entry, blk in rebuilt.blocks.items():
        assert blk is not old_blocks.get(entry)
    assert rebuilt.blocks.keys() <= {0}


def test_block_counters_flow_into_replication_metrics():
    from repro.env.environment import Environment
    from repro.minijava import compile_program
    from repro.replication.machine import ReplicatedJVM

    registry = compile_program(_LOOP_SOURCE)
    machine = ReplicatedJVM(registry, env=Environment(),
                            strategy="thread_sched",
                            jvm_config=_BLOCK_CONFIG)
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    metrics = machine.primary_metrics
    assert metrics.engine == "block"
    assert metrics.blocks_compiled > 0
    assert metrics.block_cache_hits > 0
    assert "blocks_compiled" in metrics.as_dict()


# ----------------------------------------------------------------------
# step() over the slice engine
# ----------------------------------------------------------------------
def test_step_executes_exactly_one_instruction():
    result, jvm, _ = run_minijava(_LOOP_SOURCE)
    assert result.ok
    thread = _probe_thread(_main_method(jvm))
    assert jvm.interpreter.step(thread) is StepResult.CONTINUE
    assert thread.instructions == 1
    assert thread.frames  # still mid-method


def test_step_drives_method_to_termination():
    source = """
    class Main {
        static void main() {
            int acc = 0;
            for (int i = 0; i < 5; i++) { acc = acc + i; }
        }
    }
    """
    result, jvm, _ = run_minijava(source)
    assert result.ok
    thread = _probe_thread(_main_method(jvm))
    steps = 0
    while True:
        outcome = jvm.interpreter.step(thread)
        steps += 1
        if outcome is StepResult.TERMINATED:
            break
        assert outcome is StepResult.CONTINUE
        assert steps < 1_000
    assert not thread.frames
    assert thread.instructions == steps


def test_run_slice_budget_exhaustion():
    result, jvm, _ = run_minijava(_LOOP_SOURCE)
    assert result.ok
    thread = _probe_thread(_main_method(jvm))
    end = jvm.interpreter.run_slice(thread, budget=3)
    assert end is SliceEnd.BUDGET
    assert thread.instructions == 3


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
def test_unknown_engine_rejected():
    from repro.env.environment import Environment
    from repro.minijava import compile_program

    registry = compile_program("class Main { static void main() {} }")
    with pytest.raises(ReproError):
        JVM(registry, default_natives(),
            Environment().attach("t"), JVMConfig(engine="jit"))


@pytest.mark.parametrize("engine", ["step", "slice", "block"])
def test_both_engines_run(engine):
    result, _, env = run_minijava(
        'class Main { static void main() { System.println("hi"); } }',
        config=JVMConfig(engine=engine),
    )
    assert result.ok
    assert env.console.lines() == ["hi"]

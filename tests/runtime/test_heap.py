"""Heap allocation and accounting."""

import pytest

from repro.classfile.loader import ClassRegistry
from repro.classfile.model import JClass, JField
from repro.errors import ReproError
from repro.runtime.heap import Heap
from repro.runtime.values import JArray, JObject


def _registry():
    reg = ClassRegistry()
    box = JClass("Box", "Object")
    box.add_field(JField("a", "int"))
    box.add_field(JField("b", "str"))
    box.add_field(JField("s", "int", is_static=True))
    reg.register(box)
    return reg


def test_alloc_object_default_fields():
    heap = Heap(_registry())
    obj = heap.alloc_object("Box")
    assert obj.fields == {"a": 0, "b": ""}  # statics excluded
    assert obj.class_name == "Box"


def test_oids_are_sequential():
    heap = Heap(_registry())
    oids = [heap.alloc_object("Box").oid for _ in range(3)]
    assert oids == [1, 2, 3]
    arr = heap.alloc_array("int", 2)
    assert arr.oid == 4


def test_array_defaults_by_type():
    heap = Heap(_registry())
    assert heap.alloc_array("int", 2).data == [0, 0]
    assert heap.alloc_array("float", 1).data == [0.0]
    assert heap.alloc_array("str", 1).data == [""]
    assert heap.alloc_array("ref", 1).data == [None]


def test_negative_array_is_internal_error():
    # callers must raise the Java exception before reaching the heap
    with pytest.raises(ReproError):
        Heap(_registry()).alloc_array("int", -1)


def test_gc_requested_at_threshold():
    heap = Heap(_registry(), gc_threshold_cells=50)
    assert not heap.gc_requested
    heap.alloc_array("int", 100)
    assert heap.gc_requested


def test_cells_accounting():
    heap = Heap(_registry())
    obj = heap.alloc_object("Box")      # header(2) + 2 fields = 4
    arr = heap.alloc_array("int", 10)   # header(2) + 10 = 12
    assert heap.used_cells == 16
    assert Heap.cells_of(obj) == 4
    assert Heap.cells_of(arr) == 12


def test_replace_live_resets_request():
    heap = Heap(_registry(), gc_threshold_cells=10)
    survivor = heap.alloc_object("Box")
    heap.alloc_array("int", 100)
    assert heap.gc_requested
    before = heap.used_cells
    freed = heap.replace_live([survivor], Heap.cells_of(survivor))
    assert freed == before - Heap.cells_of(survivor)
    assert heap.used_cells == 4
    assert not heap.gc_requested
    assert len(heap) == 1


def test_total_allocations_survives_gc():
    heap = Heap(_registry())
    for _ in range(5):
        heap.alloc_object("Box")
    heap.replace_live([], 0)
    assert heap.total_allocations == 5

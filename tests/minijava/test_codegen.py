"""Code generation, validated by executing compiled programs."""

from tests.util import run_expect, run_minijava


def test_while_break_continue():
    run_expect("""
        class Main {
            static void main(String[] args) {
                int sum = 0;
                int i = 0;
                while (true) {
                    i = i + 1;
                    if (i > 10) { break; }
                    if (i % 2 == 0) { continue; }
                    sum = sum + i;
                }
                System.println(sum);
            }
        }
    """, "25")


def test_for_loop_with_continue():
    run_expect("""
        class Main {
            static void main(String[] args) {
                int sum = 0;
                for (int i = 0; i < 10; i++) {
                    if (i == 5) { continue; }
                    sum += i;
                }
                System.println(sum);
            }
        }
    """, "40")


def test_nested_loops_break_inner_only():
    run_expect("""
        class Main {
            static void main(String[] args) {
                int count = 0;
                for (int i = 0; i < 3; i++) {
                    for (int j = 0; j < 10; j++) {
                        if (j == 2) { break; }
                        count++;
                    }
                }
                System.println(count);
            }
        }
    """, "6")


def test_short_circuit_evaluation():
    run_expect("""
        class Main {
            static int calls;
            static boolean noisy(boolean v) { calls++; return v; }
            static void main(String[] args) {
                boolean a = noisy(false) && noisy(true);
                System.println(calls);
                boolean b = noisy(true) || noisy(false);
                System.println(calls);
                System.println(a + "," + b);
            }
        }
    """, "1", "2", "false,true")


def test_ternary_with_coercion():
    run_expect("""
        class Main {
            static void main(String[] args) {
                float f = true ? 1 : 2.5;
                int i = false ? 10 : 20;
                System.println(f + "," + i);
            }
        }
    """, "1.0,20")


def test_boolean_materialization():
    run_expect("""
        class Main {
            static void main(String[] args) {
                boolean b = 3 < 5;
                boolean c = !(2 == 2);
                System.println(b);
                System.println(c);
            }
        }
    """, "true", "false")


def test_unary_operators():
    run_expect("""
        class Main {
            static void main(String[] args) {
                int x = 5;
                System.println(-x);
                System.println(~x);
                float f = 2.5;
                System.println(-f);
            }
        }
    """, "-5", "-6", "-2.5")


def test_string_concat_all_scalar_types():
    run_expect("""
        class Main {
            static void main(String[] args) {
                System.println("i=" + 1 + " f=" + 0.5 + " b=" + (1 < 2)
                    + " s=" + "x");
            }
        }
    """, "i=1 f=0.5 b=true s=x")


def test_string_comparisons():
    run_expect("""
        class Main {
            static void main(String[] args) {
                String a = "apple";
                System.println(a == "apple");
                System.println(a != "banana");
                System.println(a < "banana");
                System.println(a.equals("app" + "le"));
            }
        }
    """, "true", "true", "true", "true")


def test_compound_assignment_on_fields_and_arrays():
    run_expect("""
        class Box { int v; }
        class Main {
            static int counter;
            static void main(String[] args) {
                Box b = new Box();
                b.v += 3;
                b.v *= 4;
                int[] a = new int[2];
                a[1] += 7;
                counter -= 2;
                System.println(b.v + "," + a[1] + "," + counter);
            }
        }
    """, "12,7,-2")


def test_int_float_promotion_in_expressions():
    run_expect("""
        class Main {
            static void main(String[] args) {
                float f = 1 / 2;       // int division, then widen
                float g = 1 / 2.0;     // float division
                System.println(f + "," + g);
            }
        }
    """, "0.0,0.5")


def test_try_catch_catches_subtype():
    run_expect("""
        class Main {
            static void main(String[] args) {
                try {
                    throw new NumberFormatException("bad digit");
                } catch (RuntimeException e) {
                    System.println("caught: " + e.getMessage());
                }
            }
        }
    """, "caught: bad digit")


def test_try_catch_misses_unrelated_type():
    result, _, env = run_minijava("""
        class Main {
            static void main(String[] args) {
                try {
                    throw new RuntimeException("boom");
                } catch (IOException e) {
                    System.println("wrong");
                }
            }
        }
    """)
    assert result.uncaught[0][1] == "RuntimeException"
    assert env.console.lines() == []


def test_exception_propagates_through_frames():
    run_expect("""
        class Main {
            static void deep(int n) {
                if (n == 0) { throw new IllegalStateException("bottom"); }
                deep(n - 1);
            }
            static void main(String[] args) {
                try { deep(5); }
                catch (IllegalStateException e) {
                    System.println(e.getMessage());
                }
            }
        }
    """, "bottom")


def test_custom_exception_classes():
    run_expect("""
        class AppError extends Exception {
            int code;
        }
        class Main {
            static void main(String[] args) {
                try {
                    AppError e = new AppError("custom");
                    e.code = 7;
                    throw e;
                } catch (AppError e) {
                    System.println(e.getMessage() + "/" + e.code);
                }
            }
        }
    """, "custom/7")


def test_catch_variable_scoped_to_handler():
    run_expect("""
        class Main {
            static void main(String[] args) {
                String e = "outer";
                try { throw new RuntimeException("inner"); }
                catch (RuntimeException ex) { System.println(ex.getMessage()); }
                System.println(e);
            }
        }
    """, "inner", "outer")


def test_jagged_2d_array():
    run_expect("""
        class Main {
            static void main(String[] args) {
                int[][] grid = new int[3][];
                for (int i = 0; i < 3; i++) {
                    grid[i] = new int[i + 1];
                    grid[i][i] = i * 10;
                }
                System.println(grid[2][2] + "," + grid[1].length);
            }
        }
    """, "20,2")


def test_instanceof_and_cast_flow():
    run_expect("""
        class Shape { }
        class Circle extends Shape { int r; }
        class Square extends Shape { int side; }
        class Main {
            static int measure(Shape s) {
                if (s instanceof Circle) {
                    Circle c = (Circle) s;
                    return c.r * 3;
                }
                Square q = (Square) s;
                return q.side * 4;
            }
            static void main(String[] args) {
                Circle c = new Circle(); c.r = 5;
                Square q = new Square(); q.side = 2;
                System.println(measure(c) + "," + measure(q));
            }
        }
    """, "15,8")


def test_static_initializer_with_computation():
    run_expect("""
        class Tables {
            static int[] squares = makeSquares();
            static int[] makeSquares() {
                int[] t = new int[10];
                for (int i = 0; i < 10; i++) { t[i] = i * i; }
                return t;
            }
        }
        class Main {
            static void main(String[] args) {
                System.println(Tables.squares[7]);
            }
        }
    """, "49")


def test_missing_return_yields_default():
    # Control can fall off the end; codegen's fallback returns a default.
    run_expect("""
        class Main {
            static int weird(boolean b) {
                if (b) { return 5; }
                // falls through
            }
            static void main(String[] args) {
                System.println(weird(true) + "," + weird(false));
            }
        }
    """, "5,0")


def test_char_literals_are_ints():
    run_expect("""
        class Main {
            static void main(String[] args) {
                int c = 'A';
                System.println(c + "," + ('z' - 'a'));
            }
        }
    """, "65,25")


def test_hex_literals_and_shifts():
    run_expect("""
        class Main {
            static void main(String[] args) {
                int mask = 0xFF00;
                System.println((mask >> 8) + "," + (mask >>> 8)
                    + "," + (1 << 10));
            }
        }
    """, "255,255,1024")


def test_deep_expression_nesting():
    run_expect("""
        class Main {
            static void main(String[] args) {
                int v = ((1 + 2) * (3 + 4) - (5 - (6 / 2))) * 2;
                System.println(v);
            }
        }
    """, "38")

"""Property-based compiler correctness: random expressions evaluated
by the compiled mini-JVM must match a Python oracle."""

from hypothesis import given, settings, strategies as st

from repro.runtime.values import java_div, java_rem, wrap_int
from tests.util import run_minijava

# ----------------------------------------------------------------------
# Expression generator: produces (minijava_source, python_value) pairs.
# ----------------------------------------------------------------------


class _Expr:
    def __init__(self, text, value):
        self.text = text
        self.value = value


_INT_RANGE = st.integers(-10_000, 10_000)


@st.composite
def int_exprs(draw, depth=0):
    if depth >= 4 or draw(st.booleans()):
        v = draw(_INT_RANGE)
        if v < 0:
            return _Expr(f"(0 - {abs(v)})", v)
        return _Expr(str(v), v)
    op = draw(st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^"]))
    left = draw(int_exprs(depth=depth + 1))
    right = draw(int_exprs(depth=depth + 1))
    if op in ("/", "%") and right.value == 0:
        right = _Expr("1", 1)
    if op == "+":
        value = wrap_int(left.value + right.value)
    elif op == "-":
        value = wrap_int(left.value - right.value)
    elif op == "*":
        value = wrap_int(left.value * right.value)
    elif op == "/":
        value = java_div(left.value, right.value)
    elif op == "%":
        value = java_rem(left.value, right.value)
    elif op == "&":
        value = wrap_int(left.value & right.value)
    elif op == "|":
        value = wrap_int(left.value | right.value)
    else:
        value = wrap_int(left.value ^ right.value)
    return _Expr(f"({left.text} {op} {right.text})", value)


@st.composite
def bool_exprs(draw, depth=0):
    if depth >= 3:
        v = draw(st.booleans())
        return _Expr("true" if v else "false", v)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        left = draw(int_exprs(depth=2))
        right = draw(int_exprs(depth=2))
        value = {
            "<": left.value < right.value,
            "<=": left.value <= right.value,
            ">": left.value > right.value,
            ">=": left.value >= right.value,
            "==": left.value == right.value,
            "!=": left.value != right.value,
        }[op]
        return _Expr(f"({left.text} {op} {right.text})", value)
    if kind == 1:
        inner = draw(bool_exprs(depth=depth + 1))
        return _Expr(f"(!{inner.text})", not inner.value)
    op = draw(st.sampled_from(["&&", "||"]))
    left = draw(bool_exprs(depth=depth + 1))
    right = draw(bool_exprs(depth=depth + 1))
    value = (left.value and right.value) if op == "&&" \
        else (left.value or right.value)
    return _Expr(f"({left.text} {op} {right.text})", value)


def _evaluate(expr_text: str) -> str:
    source = """
        class Main {
            static void main(String[] args) {
                System.println(%s);
            }
        }
    """ % expr_text
    result, _, env = run_minijava(source)
    assert result.ok, result.uncaught
    return env.console.transcript().strip()


@settings(max_examples=50, deadline=None)
@given(int_exprs())
def test_integer_expressions_match_java_semantics(expr):
    assert _evaluate(expr.text) == str(expr.value)


@settings(max_examples=40, deadline=None)
@given(bool_exprs())
def test_boolean_expressions_match_oracle(expr):
    assert _evaluate(expr.text) == ("true" if expr.value else "false")


@settings(max_examples=30, deadline=None)
@given(st.lists(_INT_RANGE, min_size=1, max_size=12))
def test_array_sum_matches_oracle(values):
    stores = "\n".join(
        f"a[{i}] = {v if v >= 0 else f'(0 - {abs(v)})'};"
        for i, v in enumerate(values)
    )
    source = """
        class Main {
            static void main(String[] args) {
                int[] a = new int[%d];
                %s
                int sum = 0;
                for (int i = 0; i < a.length; i++) { sum = sum + a[i]; }
                System.println(sum);
            }
        }
    """ % (len(values), stores)
    result, _, env = run_minijava(source)
    assert result.ok
    assert env.console.transcript().strip() == str(wrap_int(sum(values)))


@settings(max_examples=25, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                      blacklist_characters='"\\'),
               max_size=20),
       st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                      blacklist_characters='"\\'),
               max_size=20))
def test_string_concat_and_length_match_oracle(a, b):
    source = """
        class Main {
            static void main(String[] args) {
                String s = "%s" + "%s";
                System.println(s.length());
            }
        }
    """ % (a, b)
    result, _, env = run_minijava(source)
    assert result.ok
    assert env.console.transcript().strip() == str(len(a) + len(b))

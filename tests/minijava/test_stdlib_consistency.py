"""Cross-checks between the compiler's builtin signature table, the
runtime class registry, and the native registry.

The checker's view of the standard library
(:func:`repro.minijava.types.builtin_class_signatures`) must agree with
what actually exists at run time, or programs would typecheck and then
fail to link.
"""

from repro.minijava.types import (
    BUILTIN_FIELDS,
    BUILTIN_HIERARCHY,
    builtin_class_signatures,
)
from repro.runtime.stdlib import default_natives, new_program_registry


def test_every_builtin_class_exists_in_registry():
    registry = new_program_registry()
    for name in BUILTIN_HIERARCHY:
        assert registry.has_class(name), name


def test_hierarchy_matches_registry():
    registry = new_program_registry()
    for name, parent in BUILTIN_HIERARCHY.items():
        cls = registry.resolve(name)
        assert cls.super_name == parent, name


def test_every_builtin_signature_resolves():
    registry = new_program_registry()
    for owner, methods in builtin_class_signatures().items():
        for (name, arity), sig in methods.items():
            method = registry.lookup_method(owner, name, arity)
            assert method.nargs == arity, f"{owner}.{name}"
            assert method.returns == sig.returns, f"{owner}.{name}"
            assert method.is_static == sig.is_static, f"{owner}.{name}"


def test_every_declared_native_has_an_implementation_or_intrinsic():
    from repro.env.environment import Environment
    from repro.runtime.jvm import JVM

    registry = new_program_registry()
    natives = default_natives()
    jvm = JVM(registry, natives, Environment().attach("x"))
    missing = []
    for class_name in registry.class_names():
        cls = registry.resolve(class_name)
        for (name, arity), method in cls.methods.items():
            if not method.is_native:
                continue
            if (class_name, name, arity) in jvm.intrinsics:
                continue
            if not natives.has(method.signature):
                missing.append(method.signature)
    assert missing == []


def test_builtin_fields_exist():
    registry = new_program_registry()
    for owner, fields in BUILTIN_FIELDS.items():
        for fname in fields:
            assert registry.lookup_field(owner, fname).name == fname


def test_string_sugar_targets_exist():
    from repro.minijava.types import STRING_SUGAR

    registry = new_program_registry()
    for (_, arity), (target, extra, _ret) in STRING_SUGAR.items():
        method = registry.lookup_method("Strings", target, 1 + len(extra))
        assert method.is_native


def test_nondeterministic_native_count_is_small():
    """The paper: 'fewer than 100 native methods are non-deterministic'
    in the JRE; our standard library keeps the same property."""
    table = default_natives().nondeterministic_signatures()
    assert 0 < len(table) < 100

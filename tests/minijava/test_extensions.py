"""Application-provided native classes (compiler extension point)."""

import pytest

from repro.env.environment import Environment
from repro.errors import CompileError
from repro.minijava import compile_program
from repro.minijava.extensions import (
    NativeClassSpec,
    NativeMethodSpec,
    parse_type_name,
)
from repro.minijava.types import (
    BOOL, FLOAT, INT, STRING, VOID, ArrayType, ClassType,
)
from repro.runtime.jvm import JVM
from repro.runtime.natives import NativeSpec
from repro.runtime.stdlib import build_natives


def test_parse_type_name():
    assert parse_type_name("int") is INT
    assert parse_type_name("float") is FLOAT
    assert parse_type_name("boolean") is BOOL
    assert parse_type_name("String") is STRING
    assert parse_type_name("void") is VOID
    assert parse_type_name("Widget") is ClassType("Widget")
    assert parse_type_name("int[]") is ArrayType(INT)
    assert parse_type_name("String[][]") is ArrayType(ArrayType(STRING))
    with pytest.raises(CompileError):
        parse_type_name("void[]")
    with pytest.raises(CompileError):
        parse_type_name("")


def _device():
    return NativeClassSpec("Device", methods=(
        NativeMethodSpec("poke", ("int", "String"), "int"),
    ))


def test_native_class_callable_from_minijava():
    registry = compile_program("""
        class Main {
            static void main(String[] args) {
                System.println(Device.poke(2, "xy"));
            }
        }
    """, native_classes=[_device()])

    natives = build_natives()
    natives.register(NativeSpec(
        "Device.poke/2", lambda ctx, r, a: a[0] * len(a[1]),
    ))
    env = Environment()
    jvm = JVM(registry, natives, env.attach("p"))
    result = jvm.run("Main")
    assert result.ok
    assert env.console.lines() == ["4"]


def test_native_class_is_type_checked():
    with pytest.raises(CompileError, match="argument"):
        compile_program("""
            class Main {
                static void main(String[] args) {
                    Device.poke("wrong", "types");
                }
            }
        """, native_classes=[_device()])
    with pytest.raises(CompileError, match="no static method"):
        compile_program("""
            class Main {
                static void main(String[] args) { Device.zap(); }
            }
        """, native_classes=[_device()])


def test_native_class_cannot_shadow_stdlib():
    clash = NativeClassSpec("System")
    with pytest.raises(CompileError, match="collides"):
        compile_program(
            "class Main { static void main(String[] args) { } }",
            native_classes=[clash],
        )


def test_unimplemented_native_fails_at_invocation():
    from repro.errors import NativeError

    registry = compile_program("""
        class Main {
            static void main(String[] args) { Device.poke(1, "a"); }
        }
    """, native_classes=[_device()])
    env = Environment()
    jvm = JVM(registry, build_natives(), env.attach("p"))
    with pytest.raises(NativeError, match="unsatisfied"):
        jvm.run("Main")

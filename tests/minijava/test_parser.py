"""MiniJava parser: structure and diagnostics."""

import pytest

from repro.errors import CompileError
from repro.minijava import ast
from repro.minijava.parser import parse


def _main_body(stmts):
    return parse(
        "class Main { static void main(String[] args) { %s } }" % stmts
    ).classes[0].methods[0].body


def test_class_structure():
    prog = parse("""
        class Animal {
            int legs;
            static String kingdom;
            Animal(int legs) { this.legs = legs; }
            int getLegs() { return legs; }
            static void reset() { }
        }
        class Dog extends Animal {
            Dog() { super(4); }
        }
    """)
    animal, dog = prog.classes
    assert animal.name == "Animal"
    assert dog.superclass == "Animal"
    assert [f.name for f in animal.fields] == ["legs", "kingdom"]
    assert animal.fields[1].is_static
    names = [m.name for m in animal.methods]
    assert names == ["<init>", "getLegs", "reset"]
    assert animal.methods[2].is_static
    assert isinstance(dog.methods[0].body[0], ast.SuperCall)


def test_modifiers_accepted_and_ignored():
    prog = parse("""
        public final class A {
            private int x;
            public synchronized int get() { return x; }
            protected static final void poke() { }
        }
    """)
    cls = prog.classes[0]
    assert cls.methods[0].is_synchronized
    assert cls.methods[1].is_static


def test_array_types():
    prog = parse("class A { int[][] grid; float[] row; }")
    grid, row = prog.classes[0].fields
    assert grid.type == ast.TypeName("int", 2)
    assert row.type == ast.TypeName("float", 1)


def test_operator_precedence():
    body = _main_body("int x = 1 + 2 * 3;")
    expr = body[0].initializer
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"


def test_precedence_comparison_binds_looser_than_shift():
    body = _main_body("boolean b = 1 << 2 < 10;")
    expr = body[0].initializer
    assert expr.op == "<"
    assert expr.left.op == "<<"


def test_logical_operators_short_circuit_shape():
    body = _main_body("boolean b = true || false && true;")
    expr = body[0].initializer
    assert expr.op == "||"
    assert expr.right.op == "&&"


def test_ternary():
    body = _main_body("int x = true ? 1 : 2;")
    assert isinstance(body[0].initializer, ast.Ternary)


def test_compound_assignment_desugars():
    body = _main_body("int x = 0; x += 5; x++;")
    plus = body[1]
    assert isinstance(plus, ast.Assign)
    assert isinstance(plus.value, ast.Binary) and plus.value.op == "+"
    inc = body[2]
    assert isinstance(inc.value.right, ast.IntLit)


def test_for_loop_parts():
    body = _main_body("for (int i = 0; i < 3; i++) { }")
    loop = body[0]
    assert isinstance(loop, ast.For)
    assert isinstance(loop.init, ast.VarDecl)
    assert isinstance(loop.cond, ast.Binary)
    assert isinstance(loop.update, ast.Assign)


def test_for_loop_empty_parts():
    loop = _main_body("for (;;) { break; }")[0]
    assert loop.init is None and loop.cond is None and loop.update is None


def test_if_without_braces():
    body = _main_body("if (true) return; else return;")
    assert isinstance(body[0], ast.If)
    assert len(body[0].then_body) == 1


def test_try_catch():
    stmt = _main_body(
        "try { int x = 1; } catch (IOException e) { return; }"
    )[0]
    assert isinstance(stmt, ast.TryCatch)
    assert stmt.exc_class == "IOException"
    assert stmt.exc_name == "e"


def test_synchronized_statement():
    stmt = _main_body("synchronized (this) { int x = 1; }")[0]
    assert isinstance(stmt, ast.Synchronized)


def test_new_object_and_array():
    body = _main_body("Object o = new Object(); int[] a = new int[5];")
    assert isinstance(body[0].initializer, ast.NewObject)
    arr = body[1].initializer
    assert isinstance(arr, ast.NewArray)
    assert arr.elem == ast.TypeName("int", 0)


def test_jagged_array_new():
    body = _main_body("int[][] g = new int[3][];")
    assert body[0].initializer.elem == ast.TypeName("int", 1)


def test_cast_vs_parenthesized_expression():
    body = _main_body("int x = (int) 2.5; int y = (x) + 1;")
    assert isinstance(body[0].initializer, ast.Cast)
    assert isinstance(body[1].initializer, ast.Binary)


def test_instanceof():
    stmt = _main_body("boolean b = this instanceof Main;")[0]
    assert isinstance(stmt.initializer, ast.InstanceOf)


def test_method_call_chains():
    body = _main_body('int n = "abc".trim().length();')
    call = body[0].initializer
    assert isinstance(call, ast.Call)
    assert call.method_name == "length"
    assert isinstance(call.obj, ast.Call)


def test_field_and_index_chains():
    body = _main_body("int v = a.b[1].c;")
    access = body[0].initializer
    assert isinstance(access, ast.FieldAccess)
    assert isinstance(access.obj, ast.Index)


@pytest.mark.parametrize("bad,message", [
    ("class", "expected"),
    ("class A {", "expected"),
    ("class A { int }", "expected"),
    ("class A { void f() { int = 5; } }", "expected"),
    ("class A { void f() { if true) { } } }", "expected"),
    ("class A { void f() { return 1 } }", "expected"),
])
def test_syntax_errors_raise_compile_error(bad, message):
    with pytest.raises(CompileError, match=message):
        parse(bad)


def test_error_carries_position():
    try:
        parse("class A {\n  int x\n}")
    except CompileError as err:
        assert "3:" in str(err) or "2:" in str(err)
    else:
        pytest.fail("expected CompileError")

"""MiniJava type checking: acceptance and rejection."""

import pytest

from repro.errors import CompileError
from repro.minijava.parser import parse
from repro.minijava.semantics import Checker


def check(source):
    return Checker(parse(source)).check()


def reject(source, pattern):
    with pytest.raises(CompileError, match=pattern):
        check(source)


def _main(stmts):
    return "class Main { static void main(String[] args) { %s } }" % stmts


# ----------------------------------------------------------------------
# Classes and hierarchy
# ----------------------------------------------------------------------

def test_redefining_builtin_class_rejected():
    reject("class Thread { }", "redefines")


def test_reserved_type_name():
    reject("class int { }", "expected")  # parser already refuses


def test_unknown_superclass():
    reject("class A extends Ghost { }", "unknown class")


def test_inheritance_cycle():
    reject("class A extends B { } class B extends A { }", "cycle")


def test_incompatible_override():
    reject("""
        class A { int f() { return 1; } }
        class B extends A { float f() { return 1.0; } }
    """, "incompatible")


def test_compatible_override_ok():
    check("""
        class A { int f() { return 1; } }
        class B extends A { int f() { return 2; } }
    """)


def test_duplicate_field_and_method():
    reject("class A { int x; float x; }", "duplicate field")
    reject("class A { void f() { } void f() { } }", "duplicate method")


def test_overload_by_arity_accepted():
    check("class A { void f() { } void f(int x) { } }")


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

def test_condition_must_be_boolean():
    reject(_main("if (1) { }"), "boolean")
    reject(_main("while (0) { }"), "boolean")
    reject(_main('for (int i = 0; i + 1; i++) { }'), "boolean")


def test_break_outside_loop():
    reject(_main("break;"), "outside")
    reject(_main("continue;"), "outside")


def test_return_type_checked():
    reject("class A { int f() { return; } }", "must return int")
    reject("class A { void f() { return 1; } }", "void method")
    reject("class A { int f() { return \"s\"; } }", "cannot return")


def test_int_widens_to_float():
    check("class A { float f() { return 1; } }")
    check(_main("float x = 3;"))


def test_float_does_not_narrow_implicitly():
    reject(_main("int x = 1.5;"), "cannot assign")


def test_duplicate_variable_in_scope():
    reject(_main("int x = 1; int x = 2;"), "already defined")


def test_shadowing_in_nested_scope_rejected():
    reject(_main("int x = 1; if (true) { int x = 2; }"), "already defined")


def test_fresh_scope_after_block():
    check(_main("if (true) { int x = 1; } if (true) { int x = 2; }"))


def test_throw_requires_throwable():
    reject(_main("throw new Object();"), "non-Throwable")
    check(_main("throw new RuntimeException(\"x\");"))


def test_catch_requires_throwable():
    reject(_main("try { } catch (Thread t) { }"), "non-Throwable")


def test_synchronized_needs_reference():
    reject(_main("synchronized (5) { }"), "cannot synchronize")
    check(_main("synchronized (new Object()) { }"))


def test_super_call_only_first_in_ctor():
    reject("""
        class A { }
        class B extends A {
            B() { int x = 1; super(); }
        }
    """, "first statement")
    reject(_main("super();"), "only allowed in constructors")


def test_expression_statement_must_be_call():
    reject(_main("1 + 2;"), "must be a call")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

def test_this_in_static_context():
    reject(_main("Object o = this;"), "static context")


def test_instance_field_from_static_context():
    reject("""
        class A {
            int x;
            static int f() { return x; }
        }
    """, "static context")


def test_unknown_name():
    reject(_main("int x = ghost;"), "unknown name")


def test_arithmetic_type_errors():
    reject(_main('int x = 1 + new Object().hashCode() * "s".length() + "a" - 1;'),
           "arithmetic|concatenate|cannot")
    reject(_main("boolean b = true + false;"), "cannot|arithmetic|concatenate")
    reject(_main('int x = "a" * 2;'), "arithmetic")


def test_string_concat_accepts_scalars():
    check(_main('String s = "v=" + 1 + "," + 2.5 + "," + true;'))


def test_comparison_types():
    reject(_main("boolean b = new Object() < new Object();"), "comparison")
    check(_main('boolean b = "a" < "b";'))
    check(_main("boolean b = 1 < 2.5;"))


def test_equality_types():
    check(_main("boolean b = new Object() == null;"))
    reject(_main("boolean b = new Object() == 1;"), "cannot compare")
    reject(_main('boolean b = "s" == null;'), "cannot compare")


def test_logical_ops_need_booleans():
    reject(_main("boolean b = 1 && true;"), "logical")


def test_bitwise_on_booleans_allowed():
    check(_main("boolean b = true & false;"))
    reject(_main("int x = 1 & true;"), "bitwise")


def test_array_typing():
    # indexing a freshly allocated array is legal and yields the element
    check(_main("int x = new int[2][0] + 1;"))
    reject(_main("int[] a = new int[2]; int x = a[true];"), "index")
    reject(_main("int x = 5; int y = x[0];"), "cannot index")
    check(_main("int[] a = new int[2]; int x = a[1] + a.length;"))


def test_array_length_is_read_only():
    reject(_main("int[] a = new int[2]; a.length = 5;"),
           "cannot assign to array length")


def test_call_resolution_errors():
    reject(_main("Object o = new Object(); o.fly();"), "no method")
    reject(_main("Math.sqrt(1.0, 2.0);"), "no static method")
    reject(_main("int x = Math.sqrt(4.0).explode();"),
           "cannot call a method")


def test_argument_types_checked():
    reject(_main('Math.sqrt("four");'), "argument")
    check(_main("Math.sqrt(4);"))  # int widens to float


def test_instance_call_on_static_rejected():
    reject("""
        class A { static int f() { return 1; } }
        class Main {
            static void main(String[] args) {
                A a = new A();
                int x = a.f();
            }
        }
    """, "must be called as")


def test_constructor_arity_checked():
    # Documented deviation: constructor lookup walks the superclass
    # chain by arity, so new A() resolves Object's default constructor.
    check("""
        class A { A(int x) { } }
        class Main {
            static void main(String[] args) { A a = new A(); }
        }
    """)
    # But an arity that exists nowhere in the chain is rejected.
    reject("""
        class A { A(int x) { } }
        class Main {
            static void main(String[] args) { A a = new A(1, 2, 3); }
        }
    """, "no constructor")


def test_cast_rules():
    check(_main("int x = (int) 2.5; float f = (float) 2;"))
    check("""
        class A { }
        class B extends A { }
        class Main {
            static void main(String[] args) {
                A a = new B();
                B b = (B) a;
            }
        }
    """)
    reject(_main('int x = (int) "s";'), "cannot cast")


def test_ternary_typing():
    check(_main("int x = true ? 1 : 2;"))
    check(_main("float f = true ? 1 : 2.5;"))
    reject(_main('int x = true ? 1 : "s";'), "incompatible ternary")


def test_string_sugar_resolution():
    check(_main('int n = "abc".length() + "abc".indexOf("b");'))
    reject(_main('"abc".explode();'), "no method")


def test_string_equals_builtin():
    program = check(_main('boolean b = "a".equals("b");'))
    call = program.classes[0].methods[0].body[0].initializer
    assert call.builtin == "streq"


def test_null_assignable_to_refs_not_scalars():
    check(_main("Object o = null;"))
    check(_main("int[] a = null;"))
    reject(_main("int x = null;"), "cannot assign")
    reject(_main("String s = null;"), "cannot assign")  # strings are values

"""MiniJava lexer."""

import pytest

from repro.errors import CompileError
from repro.minijava.lexer import tokenize


def _kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


def test_keywords_vs_identifiers():
    assert _kinds("class Foo") == [("kw", "class"), ("ident", "Foo")]
    assert _kinds("classy") == [("ident", "classy")]


def test_numbers():
    assert _kinds("42 0x1F 3.14 1e3 2.5e-2 7f") == [
        ("int", "42"), ("int", "0x1F"), ("float", "3.14"),
        ("float", "1e3"), ("float", "2.5e-2"), ("float", "7"),
    ]


def test_number_followed_by_dot_method():
    # "1." without a digit after must not become a float.
    kinds = _kinds("x.length")
    assert kinds == [("ident", "x"), ("op", "."), ("ident", "length")]


def test_string_literals_with_escapes():
    tokens = tokenize(r'"a\nb\t\"c\\"')
    assert tokens[0].kind == "string"
    assert tokens[0].text == 'a\nb\t"c\\'


def test_unterminated_string():
    with pytest.raises(CompileError, match="unterminated"):
        tokenize('"abc')


def test_newline_in_string():
    with pytest.raises(CompileError):
        tokenize('"ab\ncd"')


def test_char_literals():
    tokens = tokenize(r"'a' '\n' '\\'")
    assert [(t.kind, t.text) for t in tokens[:-1]] == [
        ("char", "a"), ("char", "\n"), ("char", "\\"),
    ]


def test_bad_char_literal():
    with pytest.raises(CompileError):
        tokenize("''")
    with pytest.raises(CompileError):
        tokenize("'ab'")


def test_comments():
    assert _kinds("a // line comment\nb") == [("ident", "a"), ("ident", "b")]
    assert _kinds("a /* block\n comment */ b") == [
        ("ident", "a"), ("ident", "b"),
    ]


def test_unterminated_block_comment():
    with pytest.raises(CompileError, match="unterminated block"):
        tokenize("/* never ends")


def test_multichar_operators_longest_match():
    assert _kinds("a >>> b >> c > d") == [
        ("ident", "a"), ("op", ">>>"), ("ident", "b"), ("op", ">>"),
        ("ident", "c"), ("op", ">"), ("ident", "d"),
    ]
    assert _kinds("x <= y == z && w") == [
        ("ident", "x"), ("op", "<="), ("ident", "y"), ("op", "=="),
        ("ident", "z"), ("op", "&&"), ("ident", "w"),
    ]


def test_positions():
    tokens = tokenize("ab\n  cd")
    assert (tokens[0].line, tokens[0].col) == (1, 1)
    assert (tokens[1].line, tokens[1].col) == (2, 3)


def test_position_after_block_comment():
    tokens = tokenize("/* x\ny */ z")
    assert tokens[0].text == "z"
    assert tokens[0].line == 2


def test_unknown_character():
    with pytest.raises(CompileError, match="unexpected character"):
        tokenize("a $ b")


def test_eof_token():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "eof"

"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_everything_is_a_repro_error():
    for cls in (
        errors.BytecodeError, errors.VerifyError, errors.ClassFormatError,
        errors.LinkageError, errors.CompileError, errors.NativeError,
        errors.RestrictionViolation, errors.UncaughtJavaException,
        errors.DeadlockError, errors.ReplicationError, errors.RecoveryError,
        errors.PrimaryCrashed,
    ):
        assert issubclass(cls, errors.ReproError), cls


def test_verify_error_is_bytecode_error():
    assert issubclass(errors.VerifyError, errors.BytecodeError)


def test_recovery_error_is_replication_error():
    assert issubclass(errors.RecoveryError, errors.ReplicationError)


def test_compile_error_location():
    err = errors.CompileError("bad thing", 4, 7)
    assert "at 4:7" in str(err)
    assert (err.line, err.col) == (4, 7)
    assert str(errors.CompileError("something broke")) == "something broke"


def test_restriction_violation_names_the_rule():
    err = errors.RestrictionViolation("R1", "Thread.stop used")
    assert err.restriction == "R1"
    assert "R1 violated" in str(err)


def test_uncaught_java_exception_fields():
    err = errors.UncaughtJavaException("IOException", "disk gone")
    assert err.class_name == "IOException"
    assert "IOException: disk gone" in str(err)
    bare = errors.UncaughtJavaException("Error")
    assert str(bare) == "Error"

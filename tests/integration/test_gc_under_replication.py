"""Garbage collection interacting with replication.

The paper's §4.3 concern: GC must not become a divergence channel.
With the mitigations in place (soft refs strong, finalizers detached
and local), replay must reach identical state even when collections
fire at allocation-pressure points, and even when primary and backup
use *different* heap thresholds (R0: environments differ)."""

import pytest

from dataclasses import replace

from repro.env.environment import Environment
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM
from repro.runtime.jvm import JVMConfig

CHURN = """
class Node { Node next; int[] payload; }
class Churner extends Thread {
    static Object lock = new Object();
    static int shared;
    void run() {
        Node head = null;
        for (int i = 0; i < 60; i++) {
            Node n = new Node();
            n.payload = new int[30];
            n.payload[0] = i;
            n.next = head;
            head = n;
            if (i % 8 == 0) { head = null; }  // drop garbage
            synchronized (lock) { shared = shared + 1; }
        }
    }
}
class Main {
    static void main(String[] args) {
        Churner a = new Churner(); Churner b = new Churner();
        a.start(); b.start(); a.join(); b.join();
        System.gc();
        System.println("shared=" + Churner.shared);
    }
}
"""


@pytest.mark.parametrize("strategy",
                         ["lock_sync", "thread_sched", "lock_intervals"])
def test_replay_identical_despite_gc_pressure(strategy):
    config = JVMConfig(heap_gc_threshold=4_000)
    env = Environment()
    machine = ReplicatedJVM(compile_program(CHURN), env=env,
                            strategy=strategy, jvm_config=config)
    result = machine.run("Main")
    assert result.final_result.ok
    assert machine.primary_jvm.collector.stats.collections >= 1

    replay = machine.replay_backup("Main")
    assert replay.ok
    # GC freed objects, yet the digests (over *reachable* state) match.
    assert machine.backup_jvm.state_digest() == \
        machine.primary_jvm.state_digest()
    assert env.console.transcript() == "shared=120\n"


def test_failover_with_gc_pressure():
    config = JVMConfig(heap_gc_threshold=4_000)
    env = Environment()
    machine = ReplicatedJVM(compile_program(CHURN), env=env,
                            jvm_config=config)
    machine.run("Main")
    events = machine.shipper.injector.events
    step = max(1, events // 12)
    for crash_at in range(1, events + 1, step):
        env = Environment()
        machine = ReplicatedJVM(compile_program(CHURN), env=env,
                                jvm_config=config, crash_at=crash_at)
        result = machine.run("Main")
        assert result.final_result.ok, crash_at
        assert env.console.transcript() == "shared=120\n", crash_at


def test_finalizers_do_not_perturb_replication_counters():
    """Finalizers run detached: br_cnt/mon_cnt of application threads
    must not depend on when collections happen, or thread-sched replay
    targets would never match."""
    source = """
        class Tracked {
            static int finalized;
            void finalize() { finalized = finalized + 1; }
        }
        class Main {
            static void main(String[] args) {
                for (int i = 0; i < 20; i++) {
                    Tracked t = new Tracked();
                }
                System.gc();
                System.println("finalized>=19: " + (Tracked.finalized >= 19));
            }
        }
    """
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy="thread_sched")
    result = machine.run("Main")
    assert result.final_result.ok
    replay = machine.replay_backup("Main")
    assert replay.ok
    assert machine.backup_jvm.state_digest() == \
        machine.primary_jvm.state_digest()
    assert env.console.transcript() == "finalized>=19: true\n"

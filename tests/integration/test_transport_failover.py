"""Failover over degraded and real transports.

The exactly-once guarantee must be transport-independent: output
commit waits for a *real* ack, so whatever the link drops, duplicates
or delays, every crash point must leave the stable environment state
identical to a failure-free run's.
"""

import socket

import pytest

from repro.env.environment import Environment
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM
from repro.replication.transport import (
    FAULT_PROFILES,
    FaultyTransport,
    SocketTransport,
)

FILE_IO_PROGRAM = """
class Main {
    static void main(String[] args) {
        int fd = Files.open("out.txt", "w");
        for (int i = 0; i < 4; i++) {
            Files.writeLine(fd, "line " + i);
            System.println("progress " + i);
        }
        Files.close(fd);
        System.println("size=" + Files.size("out.txt"));
    }
}
"""


@pytest.fixture(scope="module")
def template():
    """Reference run on the default transport + the machine template
    the sweeps clone."""
    env = Environment()
    machine = ReplicatedJVM(compile_program(FILE_IO_PROGRAM), env=env)
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    return machine, env.snapshot_stable(), machine.shipper.injector.events


@pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
def test_crash_sweep_exactly_once_under_fault_profile(template, profile):
    machine, reference, events = template
    for crash_at in range(1, events + 1, 2):
        clone = machine.clone(
            crash_at=crash_at,
            transport=FaultyTransport(FAULT_PROFILES[profile],
                                      seed=1000 * crash_at + 17),
        )
        result = clone.run("Main")
        assert result.failed_over, (profile, crash_at)
        assert result.final_result.ok, (profile, crash_at)
        assert clone.env.snapshot_stable() == reference, (profile, crash_at)


def test_fault_counters_reach_metrics(template):
    machine, reference, events = template
    clone = machine.clone(
        crash_at=None,
        transport=FaultyTransport(FAULT_PROFILES["chaotic"], seed=23),
    )
    result = clone.run("Main")
    assert result.outcome == "primary_completed"
    assert clone.env.snapshot_stable() == reference
    metrics = clone.primary_metrics
    assert metrics.messages_dropped > 0
    assert metrics.retransmits > 0
    assert metrics.ack_wait_time > 0.0
    assert metrics.heartbeats_sent >= metrics.heartbeats_delivered


def test_detector_counts_delivered_not_sent_heartbeats(template):
    """A heartbeat the network ate is a heartbeat the backup never saw
    — the detector keys off transport-level delivery."""
    machine, reference, events = template
    clone = machine.clone(
        crash_at=events - 1,
        transport=FaultyTransport(FAULT_PROFILES["lossy"], seed=31),
    )
    result = clone.run("Main")
    assert result.failed_over
    assert result.final_result.ok
    stats = clone.transport.stats
    assert stats.heartbeats_delivered <= stats.heartbeats_sent
    assert result.detection_intervals >= clone.detector.timeout_intervals


def test_hot_backup_over_degraded_link(template):
    machine, reference, events = template
    clone = machine.clone(
        crash_at=events - 1, hot_backup=True,
        transport=FaultyTransport(FAULT_PROFILES["slow"], seed=5),
    )
    result = clone.run("Main")
    assert result.failed_over
    assert result.final_result.ok
    assert clone.env.snapshot_stable() == reference


def test_in_memory_default_has_no_fault_artifacts(template):
    """The default transport must be indistinguishable from the
    original in-process channel: no retransmits, no measured ack
    latency, every heartbeat delivered."""
    machine, _, _ = template
    metrics = machine.primary_metrics
    assert metrics.retransmits == 0
    assert metrics.messages_dropped == 0
    assert metrics.backpressure_stalls == 0
    assert metrics.ack_wait_time == 0.0
    assert metrics.heartbeats_sent == metrics.heartbeats_delivered


# ======================================================================
# Real sockets (deselect with -m "not socket")
# ======================================================================
def _localhost_sockets_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


needs_sockets = pytest.mark.skipif(
    not _localhost_sockets_available(),
    reason="localhost TCP sockets unavailable",
)


@pytest.mark.socket
@needs_sockets
def test_socket_transport_failover_smoke(template):
    machine, reference, events = template
    clone = machine.clone(crash_at=events // 2, transport=SocketTransport())
    try:
        result = clone.run("Main")
        assert result.failed_over
        assert result.final_result.ok
        assert clone.env.snapshot_stable() == reference
    finally:
        clone.close()


@pytest.mark.socket
@needs_sockets
def test_socket_transport_complete_run_smoke(template):
    machine, reference, events = template
    clone = machine.clone(crash_at=None, transport=SocketTransport())
    try:
        result = clone.run("Main")
        assert result.outcome == "primary_completed"
        assert clone.env.snapshot_stable() == reference
        # Output commits crossed a real wire: the round trip is nonzero.
        assert clone.primary_metrics.ack_wait_time > 0.0
        assert clone.channel.backup_log() == machine.channel.backup_log()
    finally:
        clone.close()

"""Property-based replication testing.

Hypothesis generates small *race-free* multi-threaded MiniJava programs
(random worker counts, loop lengths, synchronized operations on shared
cells, yields, clock reads, console output).  For every generated
program and every strategy, the backup must replay the full log to a
bit-identical state digest with no duplicated output — the paper's core
guarantee, explored over program space rather than hand-picked cases.
"""

from hypothesis import given, settings, strategies as st

from repro.env.environment import Environment
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM


@st.composite
def racefree_programs(draw):
    n_workers = draw(st.integers(1, 3))
    n_cells = draw(st.integers(1, 2))
    iters = draw(st.integers(5, 40))
    op = draw(st.sampled_from(["add", "mix", "max"]))
    use_yield = draw(st.booleans())
    read_clock = draw(st.booleans())

    body = {
        "add": "c.apply(i, 1);",
        "mix": "c.apply(i * 17, 3);",
        "max": "c.apply(i, i % 7);",
    }[op]
    maybe_yield = "if (i % 9 == 0) { Thread.yield(); }" if use_yield else ""
    clock_stmt = ("int t = System.currentTimeMillis(); "
                  "if (t < 0) { System.println(\"impossible\"); }"
                  if read_clock else "")

    cells_decl = "\n".join(
        f"        Cell c{i} = new Cell();" for i in range(n_cells)
    )
    workers = "\n".join(
        f"        Worker w{i} = new Worker(c{i % n_cells}, {iters + i});\n"
        f"        w{i}.start();"
        for i in range(n_workers)
    )
    joins = "\n".join(f"        w{i}.join();" for i in range(n_workers))
    prints = "\n".join(
        f"        System.println(\"cell{i}=\" + c{i}.value());"
        for i in range(n_cells)
    )

    return f"""
class Cell {{
    int state;
    synchronized void apply(int a, int b) {{
        state = (state * 31 + a + b) % 1000003;
    }}
    synchronized int value() {{ return state; }}
}}
class Worker extends Thread {{
    Cell c; int n;
    Worker(Cell c, int n) {{ this.c = c; this.n = n; }}
    void run() {{
        {clock_stmt}
        for (int i = 0; i < n; i++) {{
            {body}
            {maybe_yield}
        }}
    }}
}}
class Main {{
    static void main(String[] args) {{
{cells_decl}
{workers}
{joins}
{prints}
    }}
}}
"""


@settings(max_examples=12, deadline=None)
@given(racefree_programs(), st.sampled_from(
    ["lock_sync", "thread_sched", "lock_intervals"]
))
def test_random_racefree_program_replays_identically(source, strategy):
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy=strategy)
    result = machine.run("Main")
    assert result.final_result.ok, result.final_result.uncaught
    primary_digest = machine.primary_jvm.state_digest()
    transcript = env.console.transcript()

    replay = machine.replay_backup("Main")
    assert replay.ok, replay.uncaught
    assert machine.backup_jvm.state_digest() == primary_digest
    assert env.console.transcript() == transcript  # nothing re-emitted


@settings(max_examples=8, deadline=None)
@given(racefree_programs(),
       st.sampled_from(["lock_sync", "thread_sched", "lock_intervals"]),
       st.integers(1, 1_000_000))
def test_random_program_failover_is_consistent(source, strategy, crash_seed):
    """Crash at a pseudo-random event; the failover run must complete
    cleanly and print each cell line exactly once."""
    registry = compile_program(source)
    probe = ReplicatedJVM(registry, env=Environment(), strategy=strategy)
    probe_result = probe.run("Main")
    assert probe_result.final_result.ok
    events = probe.shipper.injector.events
    if events == 0:
        return
    crash_at = crash_seed % events + 1

    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy=strategy, crash_at=crash_at)
    result = machine.run("Main")
    assert result.final_result.ok, (crash_at, result.final_result.uncaught)
    lines = env.console.lines()
    cell_lines = [l for l in lines if l.startswith("cell")]
    # each cell printed exactly once (exactly-once output)
    names = [l.split("=")[0] for l in cell_lines]
    assert len(names) == len(set(names))
    assert names == sorted(names)

"""Differential tests: the fast path must be observationally identical
to single-step execution.

The batched engine is only admissible because every replication-
relevant observation point (progress points, shipped logs, state
digests, console output) happens at safe-point events the fast path
still honors one at a time.  These tests enforce that claim across:

* every harness workload (test profile), unreplicated;
* per-slice ``(vid, progress_point, reason)`` trajectories;
* replicated primaries under both strategies — byte-identical shipped
  logs;
* random MiniJava programs (Hypothesis).

The ``block`` engine (superinstruction compiler) rides the same sweep:
its hot threshold is forced to 1 in these tests so every eligible
basic block actually compiles, making the compiled path — deferred
instruction accounting, branch fusion, block chaining — the path under
test rather than a cold fallback to the slice loop.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.conform.workloads import get_workload, workload_names
from repro.env.environment import Environment
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM, run_unreplicated
from repro.runtime.jvm import JVM, JVMConfig, RunHooks
from repro.runtime.stdlib import default_natives
from repro.workloads import ALL_WORKLOADS
from tests.minijava.test_compiler_properties import bool_exprs, int_exprs

ENGINES = ("step", "slice", "block")


def _config(engine, base=None):
    """A JVMConfig for one engine; block compiles everything hot."""
    config = dataclasses.replace(base, engine=engine) if base is not None \
        else JVMConfig(engine=engine)
    if engine == "block":
        config.block_hot_threshold = 1
    return config


def _observe(result, jvm, env):
    """Everything the replication layer could tell two runs apart by."""
    return {
        "digest": jvm.state_digest(),
        "instructions": result.instructions,
        "reschedules": result.reschedules,
        "uncaught": list(result.uncaught),
        "transcript": env.console.transcript(),
        "threads": sorted(
            (t.vid, t.br_cnt, t.mon_cnt, t.instructions)
            for t in jvm.scheduler.threads
        ),
    }


# ----------------------------------------------------------------------
# Harness workloads, unreplicated
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
def test_workload_equivalence(workload):
    registry = workload.compile("test")
    observed = {}
    for engine in ENGINES:
        env = Environment()
        workload.prepare_env(env, "test")
        result, jvm = run_unreplicated(
            registry, workload.main_class,
            env=env, jvm_config=_config(engine),
        )
        observed[engine] = _observe(result, jvm, env)
    for engine in ENGINES[1:]:
        assert observed["step"] == observed[engine], engine


# ----------------------------------------------------------------------
# Slice-end trajectories
# ----------------------------------------------------------------------
class _Recorder(RunHooks):
    def __init__(self):
        self.events = []

    def on_slice_end(self, jvm, thread, reason):
        self.events.append((thread.vid, thread.progress_point(), reason))


def test_slice_end_trajectories_match():
    """Every descheduling decision lands on the same ``(br_cnt, pc,
    mon_cnt)`` point for the same reason under both engines — the
    property replicated thread scheduling relies on."""
    workload = get_workload("counter")
    trajectories = {}
    for engine in ENGINES:
        env = Environment()
        jvm = JVM(
            workload.registry(), default_natives(), env.attach("traj"),
            _config(engine, workload.jvm_config(engine)),
        )
        recorder = _Recorder()
        jvm.run_hooks = recorder
        result = jvm.run(workload.main_class)
        assert result.ok, result.uncaught
        trajectories[engine] = recorder.events
    for engine in ENGINES[1:]:
        assert trajectories["step"] == trajectories[engine], engine
    assert len(trajectories["step"]) > 1  # actually multi-slice


# ----------------------------------------------------------------------
# Replicated primaries: shipped logs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload_name", sorted(workload_names()))
@pytest.mark.parametrize("strategy", ["lock_sync", "thread_sched"])
def test_replicated_shipped_logs_identical(workload_name, strategy):
    workload = get_workload(workload_name)
    observed = {}
    for engine in ENGINES:
        machine = ReplicatedJVM(
            workload.registry(), env=Environment(), strategy=strategy,
            jvm_config=_config(engine, workload.jvm_config(engine)),
        )
        result = machine.run(workload.main_class)
        assert result.outcome == "primary_completed", result.outcome
        observed[engine] = {
            "delivered": list(machine.transport.delivered),
            "digest": machine.primary_jvm.state_digest(),
            "stable": machine.env.snapshot_stable(),
            "records": machine.primary_metrics.records_logged,
        }
    for engine in ENGINES[1:]:
        assert observed["step"] == observed[engine], engine


# ----------------------------------------------------------------------
# Random programs
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(cond=bool_exprs(), hit=int_exprs(), miss=int_exprs(),
       reps=st.integers(1, 8))
def test_random_programs_equivalent(cond, hit, miss, reps):
    source = """
        class Main {
            static void main(String[] args) {
                int acc = 0;
                for (int i = 0; i < %d; i++) {
                    if (%s) { acc = acc + %s; } else { acc = acc - %s; }
                }
                System.println(acc);
            }
        }
    """ % (reps, cond.text, hit.text, miss.text)
    registry = compile_program(source)
    observed = {}
    for engine in ENGINES:
        env = Environment()
        result, jvm = run_unreplicated(
            registry, "Main", env=env, jvm_config=_config(engine),
        )
        observed[engine] = _observe(result, jvm, env)
    for engine in ENGINES[1:]:
        assert observed["step"] == observed[engine], engine

"""Negative results the paper predicts: where replication breaks.

The paper is explicit that replicated lock acquisition is only sound
under R4A (no data races) and that soft references are a divergence
channel (§4.3).  These tests *demonstrate* both failure modes, plus the
baseline fact that un-replicated schedules genuinely diverge (the
threat the whole system exists to handle)."""

import pytest

from repro.env.environment import Environment
from repro.minijava import compile_program
from repro.replication.machine import (
    DEFAULT_BACKUP,
    DEFAULT_PRIMARY,
    run_unreplicated,
)
from repro.runtime.jvm import JVMConfig

RACY = """
    class Racer extends Thread {
        static int shared;
        void run() {
            for (int i = 0; i < 400; i++) {
                int tmp = shared;
                int pad = 0;
                for (int k = 0; k < 6; k++) { pad = pad + k; }
                shared = tmp + 1 + pad - pad;
            }
        }
    }
    class Main {
        static void main(String[] args) {
            Racer a = new Racer(); Racer b = new Racer();
            a.start(); b.start(); a.join(); b.join();
            System.println(Racer.shared);
        }
    }
"""


def test_unreplicated_replicas_diverge_without_coordination():
    """Identical program + identical inputs but different scheduler
    seeds produce different results — the paper's problem statement."""
    results = set()
    for settings in (DEFAULT_PRIMARY, DEFAULT_BACKUP):
        env = Environment()
        _, jvm = run_unreplicated(
            compile_program(RACY), "Main", env=env, settings=settings,
        )
        results.add(env.console.transcript())
    assert len(results) == 2


def test_figure1_data_race_defeats_lock_replication():
    """The paper's Figure 1: a guard not protected by a monitor lets
    different schedules invoke a synchronized method a different number
    of times, so the lock acquisition *sequence itself* differs between
    seeds — lock-order replication cannot replicate what is not a
    function of lock order."""
    source = """
        class Formatter {
            static int constructed;
            Formatter() { constructed = constructed + 1; }
        }
        class Example extends Thread {
            static Formatter shared_data = null;     // Figure 1, line 2
            static Object lock = new Object();
            static int inits;
            void run() {
                int warm = 0;
                for (int k = 0; k < 40; k++) { warm = warm + k; }
                if (shared_data == null) {            // guard NOT in a monitor
                    int pad = 0;
                    for (int k = 0; k < 30; k++) { pad = pad + k; }
                    shared_data = new Formatter();
                    synchronized (lock) {
                        inits = inits + 1 + warm - warm + pad - pad;
                    }
                }
            }
        }
        class Main {
            static void main(String[] args) {
                Example a = new Example(); Example b = new Example();
                a.start(); b.start(); a.join(); b.join();
                System.println(Example.inits + "/" + Formatter.constructed);
            }
        }
    """
    acquisition_profiles = set()
    for seed in range(12):
        env = Environment()
        from repro.replication.machine import ReplicaSettings
        _, jvm = run_unreplicated(
            compile_program(source), "Main", env=env,
            settings=ReplicaSettings(seed, 0, seed),
        )
        acquisition_profiles.add(
            (jvm.sync.total_acquisitions, env.console.transcript())
        )
    # Different seeds produce different lock-acquisition sequences:
    # R4A is violated and the technique's precondition fails.
    assert len(acquisition_profiles) > 1


def test_soft_reference_divergence_without_mitigation():
    """§4.3: with soft references actually collectible, replicas with
    different GC pressure diverge.  We model the 'different
    environments' with different heap thresholds (R0)."""
    source = """
        class Main {
            static void main(String[] args) {
                SoftReference cache = new SoftReference(new Object());
                int[] pressure = new int[2000];
                pressure[0] = 1;
                System.gc();
                if (cache.get() == null) {
                    System.println("cache MISS path");
                } else {
                    System.println("cache HIT path");
                }
            }
        }
    """
    outcomes = set()
    for strong in (True, False):
        env = Environment()
        config = JVMConfig(soft_refs_strong=strong)
        _, _ = run_unreplicated(compile_program(source), "Main", env=env,
                                jvm_config=config)
        outcomes.add(env.console.transcript())
    assert outcomes == {"cache HIT path\n", "cache MISS path\n"}


def test_soft_reference_mitigation_keeps_replicas_identical():
    """With the paper's treat-as-strong mitigation, GC pressure
    differences are invisible: both 'replicas' take the HIT path."""
    source = """
        class Main {
            static void main(String[] args) {
                SoftReference cache = new SoftReference(new Object());
                int[] pressure = new int[2000];
                pressure[0] = 1;
                System.gc();
                System.println(cache.get() != null);
            }
        }
    """
    outcomes = set()
    for threshold in (3_000, 4_000_000):
        env = Environment()
        config = JVMConfig(heap_gc_threshold=threshold)
        run_unreplicated(compile_program(source), "Main", env=env,
                         jvm_config=config)
        outcomes.add(env.console.transcript())
    assert outcomes == {"true\n"}

"""Full-log replay equivalence: the backup, driven only by the log,
reconstructs the primary's exact final state (digest equality) for
every workload under both strategies — despite different scheduler
seeds, clock offsets, and entropy."""

import pytest

from repro.env.environment import Environment
from repro.errors import ReproError
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM
from repro.workloads import ALL_WORKLOADS


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
@pytest.mark.parametrize("strategy", ["lock_sync", "thread_sched"])
def test_workload_replay_reaches_identical_state(workload, strategy):
    env = Environment()
    workload.prepare_env(env, "test")
    machine = ReplicatedJVM(workload.compile("test"), env=env,
                            strategy=strategy)
    result = machine.run(workload.main_class)
    assert result.outcome == "primary_completed"
    assert result.final_result.ok
    primary_digest = machine.primary_jvm.state_digest()
    console_after_primary = env.console.transcript()

    replay = machine.replay_backup(workload.main_class)
    assert replay.ok, replay.uncaught
    assert machine.backup_jvm.state_digest() == primary_digest
    # Replay suppressed every output: nothing was emitted twice.
    assert env.console.transcript() == console_after_primary
    assert machine.backup_metrics.outputs_suppressed > 0


@pytest.mark.parametrize("strategy", ["lock_sync", "thread_sched"])
def test_replay_consumes_every_logged_record(strategy):
    source = """
        class W extends Thread {
            static Object lock = new Object();
            static int shared;
            void run() {
                for (int i = 0; i < 60; i++) {
                    synchronized (lock) { shared = shared + 1; }
                }
            }
        }
        class Main {
            static void main(String[] args) {
                W a = new W(); W b = new W();
                a.start(); b.start(); a.join(); b.join();
                System.println(W.shared);
            }
        }
    """
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy=strategy)
    machine.run("Main")
    machine.replay_backup("Main")
    backup = machine.backup_jvm
    if strategy == "lock_sync":
        assert not backup.sync.admission.in_recovery
        assert backup.sync.admission.remaining() == 0
    else:
        assert not backup.scheduler.controller.in_recovery
        assert backup.scheduler.controller.remaining() == 0
    assert machine.backup_metrics.records_replayed > 0


def test_thread_sched_replay_reproduces_racy_interleaving():
    """Under replicated thread scheduling even data races replay
    identically (R4B makes all shared data schedule-protected)."""
    source = """
        class Racer extends Thread {
            static int shared;
            static String trace = "";
            String tag;
            Racer(String tag) { this.tag = tag; }
            void run() {
                for (int i = 0; i < 80; i++) {
                    shared = shared + 1;
                    trace = trace + tag;
                }
            }
        }
        class Main {
            static void main(String[] args) {
                Racer a = new Racer("a"); Racer b = new Racer("b");
                a.start(); b.start(); a.join(); b.join();
                System.println(Racer.trace.hashCode() + ":" + Racer.shared);
            }
        }
    """
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy="thread_sched")
    machine.run("Main")
    primary_digest = machine.primary_jvm.state_digest()
    replay = machine.replay_backup("Main")
    assert replay.ok
    assert machine.backup_jvm.state_digest() == primary_digest


def test_backup_allocation_order_matches_primary():
    """Correct replay reproduces the allocation sequence, so heap oids
    coincide — the strong form of 'identical state transitions'."""
    source = """
        class Node { Node next; }
        class Builder extends Thread {
            static Node head;
            static Object lock = new Object();
            void run() {
                for (int i = 0; i < 30; i++) {
                    synchronized (lock) {
                        Node n = new Node();
                        n.next = head;
                        head = n;
                    }
                }
            }
        }
        class Main {
            static void main(String[] args) {
                Builder a = new Builder(); Builder b = new Builder();
                a.start(); b.start(); a.join(); b.join();
                System.println("built");
            }
        }
    """
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy="thread_sched")
    machine.run("Main")
    machine.replay_backup("Main")
    primary_oids = [o.oid for o in machine.primary_jvm.heap.objects]
    backup_oids = [o.oid for o in machine.backup_jvm.heap.objects]
    assert primary_oids == backup_oids

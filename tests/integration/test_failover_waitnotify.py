"""Failover through condition synchronization (wait/notify).

The hardest replay territory: threads block in wait sets, wake via
notify, and re-acquire monitors — the re-acquisition is itself a
logged lock acquisition (the paper stores the monitor's l_asn in the
schedule record for exactly this reason).  These tests crash-sweep a
producer-consumer pipeline under both strategies."""

import pytest

from repro.env.environment import Environment
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM

PIPELINE = """
class Cell {
    int value;
    boolean full;
    synchronized void put(int v) {
        while (full) { this.wait(); }
        value = v; full = true;
        this.notifyAll();
    }
    synchronized int take() {
        while (!full) { this.wait(); }
        full = false;
        this.notifyAll();
        return value;
    }
}

class Producer extends Thread {
    Cell cell; int n;
    Producer(Cell c, int n) { cell = c; this.n = n; }
    void run() {
        for (int i = 1; i <= n; i++) { cell.put(i * i); }
        cell.put(-1);
    }
}

class Consumer extends Thread {
    Cell cell;
    int total;
    Consumer(Cell c) { cell = c; }
    void run() {
        int v = cell.take();
        while (v != -1) {
            total = total + v;
            v = cell.take();
        }
    }
}

class Main {
    static void main(String[] args) {
        Cell cell = new Cell();
        Producer p = new Producer(cell, 12);
        Consumer c = new Consumer(cell);
        p.start(); c.start();
        p.join(); c.join();
        System.println("total=" + c.total);
    }
}
"""

EXPECTED = "total=650\n"  # sum of squares 1..12


@pytest.mark.parametrize("strategy", ["lock_sync", "thread_sched"])
def test_pipeline_replicates_without_failure(strategy):
    env = Environment()
    machine = ReplicatedJVM(compile_program(PIPELINE), env=env,
                            strategy=strategy)
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    assert env.console.transcript() == EXPECTED
    replay = machine.replay_backup("Main")
    assert replay.ok
    assert machine.backup_jvm.state_digest() == \
        machine.primary_jvm.state_digest()
    assert env.console.transcript() == EXPECTED  # suppressed on replay


@pytest.mark.parametrize("strategy", ["lock_sync", "thread_sched"])
def test_pipeline_crash_sweep(strategy):
    env = Environment()
    machine = ReplicatedJVM(compile_program(PIPELINE), env=env,
                            strategy=strategy)
    machine.run("Main")
    total_events = machine.shipper.injector.events
    assert total_events > 10

    step = max(1, total_events // 30)
    for crash_at in range(1, total_events + 1, step):
        env = Environment()
        machine = ReplicatedJVM(compile_program(PIPELINE), env=env,
                                strategy=strategy, crash_at=crash_at)
        result = machine.run("Main")
        assert result.failed_over, crash_at
        assert result.final_result.ok, (crash_at,
                                        result.final_result.uncaught)
        assert env.console.transcript() == EXPECTED, crash_at


def test_multiple_waiters_wake_in_replayed_order():
    """Three consumers share one queue; the order in which they drain
    items is schedule-dependent, so replay must pin it.  We verify by
    digest equality under thread scheduling."""
    source = """
        class Queue {
            int[] items;
            int head; int tail;
            Queue(int cap) { items = new int[cap]; }
            synchronized void push(int v) {
                items[tail] = v; tail = tail + 1;
                this.notifyAll();
            }
            synchronized int pop() {
                while (head == tail) { this.wait(); }
                int v = items[head];
                head = head + 1;
                return v;
            }
        }
        class Drainer extends Thread {
            Queue q; int got;
            Drainer(Queue q) { this.q = q; }
            void run() {
                for (int i = 0; i < 4; i++) { got = got + q.pop(); }
            }
        }
        class Main {
            static void main(String[] args) {
                Queue q = new Queue(64);
                Drainer[] ds = new Drainer[3];
                for (int i = 0; i < 3; i++) {
                    ds[i] = new Drainer(q);
                    ds[i].start();
                }
                for (int v = 1; v <= 12; v++) { q.push(v); }
                int sum = 0;
                for (int i = 0; i < 3; i++) {
                    ds[i].join();
                    sum = sum + ds[i].got;
                }
                System.println("sum=" + sum);
            }
        }
    """
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy="thread_sched")
    result = machine.run("Main")
    assert result.final_result.ok
    assert env.console.transcript() == "sum=78\n"
    machine.replay_backup("Main")
    assert machine.backup_jvm.state_digest() == \
        machine.primary_jvm.state_digest()

"""End-to-end failover: crash sweeps, exactly-once output, recovery.

These are the reproduction's headline correctness properties
(DESIGN.md §6): for deterministic programs the stable environment state
after *any* crash point must equal a failure-free run's; for
non-deterministic (racy) programs it must be a consistent execution
with exactly-once output.
"""

import pytest

from repro.env.environment import Environment
from repro.errors import ReproError
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM

FILE_IO_PROGRAM = """
class Main {
    static void main(String[] args) {
        int fd = Files.open("out.txt", "w");
        for (int i = 0; i < 4; i++) {
            Files.writeLine(fd, "line " + i);
            System.println("progress " + i);
        }
        Files.close(fd);
        System.println("size=" + Files.size("out.txt"));
    }
}
"""


def _reference(strategy):
    env = Environment()
    machine = ReplicatedJVM(compile_program(FILE_IO_PROGRAM), env=env,
                            strategy=strategy)
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    return env.snapshot_stable(), machine.shipper.injector.events


@pytest.mark.parametrize("strategy", ["lock_sync", "thread_sched"])
def test_crash_sweep_exactly_once(strategy):
    reference, total_events = _reference(strategy)
    assert total_events > 20
    for crash_at in range(1, total_events + 1):
        env = Environment()
        machine = ReplicatedJVM(
            compile_program(FILE_IO_PROGRAM), env=env,
            strategy=strategy, crash_at=crash_at,
        )
        result = machine.run("Main")
        assert result.failed_over, crash_at
        assert result.final_result.ok, (crash_at, result.final_result.uncaught)
        assert env.snapshot_stable() == reference, f"crash_at={crash_at}"


def test_failover_reports_detection_and_crash_event():
    env = Environment()
    machine = ReplicatedJVM(compile_program(FILE_IO_PROGRAM), env=env,
                            strategy="lock_sync", crash_at=10)
    result = machine.run("Main")
    assert result.failed_over
    assert result.crash_event == 10
    assert result.detection_intervals == machine.detector.timeout_intervals
    assert machine.primary_jvm.session.destroyed
    assert not machine.backup_jvm.session.destroyed


def test_backup_adopts_nondeterministic_inputs():
    """The backup's clock/entropy differ from the primary's, yet
    outputs already emitted pin the values: the backup must adopt the
    primary's logged results (§4.1)."""
    source = """
        class Main {
            static void main(String[] args) {
                int t = System.currentTimeMillis();
                int r = Env.randomInt(1000000);
                System.println("t=" + t + " r=" + r);
                int t2 = System.currentTimeMillis();
                System.println("mono=" + (t2 >= t));
            }
        }
    """
    # Crash right between the first output commit and the output: the
    # backup replays and must print the PRIMARY's clock value.
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy="lock_sync")
    machine.run("Main")
    reference = env.console.transcript()
    events = machine.shipper.injector.events

    for crash_at in range(1, events + 1):
        env = Environment()
        machine = ReplicatedJVM(compile_program(source), env=env,
                                strategy="lock_sync", crash_at=crash_at)
        result = machine.run("Main")
        assert result.final_result.ok
        lines = env.console.lines()
        assert len(lines) == 2, (crash_at, lines)
        assert lines[1] == "mono=true", (crash_at, lines)
        # If the first line was already printed by the primary, the
        # whole transcript must match the reference exactly.
        if crash_at > events - 2:
            continue
    del reference


def test_volatile_fd_state_restored_across_failover():
    """An open file's descriptor and offset are volatile; the file
    side-effect handler must rebuild them so the backup's continuation
    writes land at the right place (R6)."""
    source = """
        class Main {
            static void main(String[] args) {
                int fd = Files.open("data.bin", "w");
                Files.write(fd, "AAAA");
                Files.write(fd, "BBBB");
                Files.write(fd, "CCCC");
                Files.close(fd);
            }
        }
    """
    # Sweep all crash points; final file must always be AAAABBBBCCCC.
    env0 = Environment()
    m0 = ReplicatedJVM(compile_program(source), env=env0)
    m0.run("Main")
    assert env0.fs.contents("data.bin") == "AAAABBBBCCCC"
    events = m0.shipper.injector.events

    for crash_at in range(1, events + 1):
        env = Environment()
        machine = ReplicatedJVM(compile_program(source), env=env,
                                crash_at=crash_at)
        result = machine.run("Main")
        assert result.final_result.ok, crash_at
        assert env.fs.contents("data.bin") == "AAAABBBBCCCC", crash_at


def test_file_reads_replay_identically():
    """File reads are non-deterministic inputs: the backup adopts the
    logged lines and the handler restores the final offset, so the
    continuation reads exactly where the primary stopped."""
    source = """
        class Main {
            static void main(String[] args) {
                int fd = Files.open("input.txt", "r");
                int total = 0;
                String line = Files.readLine(fd);
                while (!line.equals("")) {
                    total = total + line.length();
                    System.println("read:" + line);
                    line = Files.readLine(fd);
                }
                Files.close(fd);
                System.println("total=" + total);
            }
        }
    """

    def fresh_env():
        env = Environment()
        env.fs.put("input.txt", "alpha\nbeta\ngamma\ndelta\n")
        return env

    env0 = fresh_env()
    m0 = ReplicatedJVM(compile_program(source), env=env0)
    m0.run("Main")
    reference = env0.snapshot_stable()
    events = m0.shipper.injector.events

    for crash_at in range(1, events + 1, 2):
        env = fresh_env()
        machine = ReplicatedJVM(compile_program(source), env=env,
                                crash_at=crash_at)
        result = machine.run("Main")
        assert result.final_result.ok, crash_at
        assert env.snapshot_stable() == reference, crash_at


@pytest.mark.parametrize("strategy", ["lock_sync", "thread_sched"])
def test_multithreaded_racefree_failover(strategy):
    """A race-free multi-threaded program must reach the same stable
    state across any crash point under either strategy."""
    source = """
        class Counter {
            int n;
            synchronized void add(int d) { n = n + d; }
            synchronized int get() { return n; }
        }
        class Worker extends Thread {
            Counter c; int d;
            Worker(Counter c, int d) { this.c = c; this.d = d; }
            void run() { for (int i = 0; i < 120; i++) { c.add(d); } }
        }
        class Main {
            static void main(String[] args) {
                Counter c = new Counter();
                Worker a = new Worker(c, 1); Worker b = new Worker(c, 100);
                a.start(); b.start(); a.join(); b.join();
                System.println("total=" + c.get());
            }
        }
    """
    expected = "total=12120\n"
    env0 = Environment()
    m0 = ReplicatedJVM(compile_program(source), env=env0, strategy=strategy)
    m0.run("Main")
    assert env0.console.transcript() == expected
    events = m0.shipper.injector.events

    step = max(1, events // 25)
    for crash_at in range(1, events + 1, step):
        env = Environment()
        machine = ReplicatedJVM(compile_program(source), env=env,
                                strategy=strategy, crash_at=crash_at)
        result = machine.run("Main")
        assert result.final_result.ok, crash_at
        assert env.console.transcript() == expected, crash_at

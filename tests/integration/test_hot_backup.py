"""Hot backup: the paper's 'keeping the backup updated' extension.

A hot backup replays the log *during* normal operation, pausing
whenever it would need a record that has not been delivered yet
(starvation).  At failover only the undelivered tail remains, so
recovery work is near zero.  These tests cover all three strategies,
crash sweeps, and the recovery-work advantage over a cold backup.
"""

import pytest

from repro.env.environment import Environment
from repro.minijava import compile_program
from repro.replication.machine import ReplicatedJVM

MULTI = """
class Counter {
    int n;
    synchronized void add(int d) { n = n + d; }
    synchronized int get() { return n; }
}
class W extends Thread {
    Counter c; int d;
    W(Counter c, int d) { this.c = c; this.d = d; }
    void run() { for (int i = 0; i < 80; i++) { c.add(d); } }
}
class Main {
    static void main(String[] args) {
        Counter c = new Counter();
        W a = new W(c, 1); W b = new W(c, 10);
        a.start(); b.start(); a.join(); b.join();
        System.println("total=" + c.get());
        int fd = Files.open("out.txt", "w");
        Files.writeLine(fd, "v=" + c.get());
        Files.close(fd);
    }
}
"""

STRATEGIES = ("lock_sync", "thread_sched", "lock_intervals")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_hot_backup_tracks_primary_to_identical_state(strategy):
    env = Environment()
    machine = ReplicatedJVM(compile_program(MULTI), env=env,
                            strategy=strategy, hot_backup=True)
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    # The backup ran alongside and reached the same state, with every
    # output suppressed (no duplicates on the console or in the file).
    assert machine.backup_jvm.state_digest() == \
        machine.primary_jvm.state_digest()
    assert env.console.transcript() == "total=880\n"
    assert env.fs.contents("out.txt") == "v=880\n"
    assert machine.backup_metrics.outputs_suppressed >= 2


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_hot_backup_crash_sweep(strategy):
    env = Environment()
    machine = ReplicatedJVM(compile_program(MULTI), env=env,
                            strategy=strategy, hot_backup=True)
    machine.run("Main")
    events = machine.shipper.injector.events
    step = max(1, events // 20)
    for crash_at in range(1, events + 1, step):
        env = Environment()
        machine = ReplicatedJVM(compile_program(MULTI), env=env,
                                strategy=strategy, hot_backup=True,
                                crash_at=crash_at)
        result = machine.run("Main")
        assert result.failed_over, crash_at
        assert result.final_result.ok, crash_at
        assert env.console.transcript() == "total=880\n", crash_at
        assert env.fs.contents("out.txt") == "v=880\n", crash_at


def test_hot_backup_reduces_recovery_work():
    """At the crash, a cold backup must replay the whole delivered log;
    the hot backup has already consumed all but the most recent batch."""
    source = """
        class Main {
            static Object lock = new Object();
            static void main(String[] args) {
                int acc = 0;
                for (int i = 0; i < 400; i++) {
                    synchronized (lock) { acc = acc + i; }
                }
                System.println(acc);
                for (int i = 0; i < 400; i++) {
                    synchronized (lock) { acc = acc + 1; }
                }
                System.println(acc);
            }
        }
    """
    # Find a late crash point.
    probe_env = Environment()
    probe = ReplicatedJVM(compile_program(source), env=probe_env,
                          strategy="lock_sync")
    probe.run("Main")
    crash_at = probe.shipper.injector.events - 1

    env = Environment()
    hot = ReplicatedJVM(compile_program(source), env=env,
                        strategy="lock_sync", hot_backup=True,
                        crash_at=crash_at)
    result = hot.run("Main")
    assert result.failed_over and result.final_result.ok
    hot_total = hot.backup_jvm.instructions

    env = Environment()
    cold = ReplicatedJVM(compile_program(source), env=env,
                         strategy="lock_sync", crash_at=crash_at)
    result = cold.run("Main")
    assert result.failed_over and result.final_result.ok
    cold_total = cold.backup_jvm.instructions

    # Both backups execute roughly the same program in total...
    assert abs(hot_total - cold_total) < cold_total * 0.05
    # ...but the hot backup did nearly all of it *before* the crash:
    # its post-crash recovery work is a small fraction of the cold
    # backup's full-log replay.
    hot_recovery = hot_total - hot.hot_precrash_instructions
    assert hot_recovery < cold_total * 0.25, (hot_recovery, cold_total)


def test_hot_backup_starves_rather_than_running_ahead():
    """During normal operation the hot backup never executes an output
    the primary has not yet committed — the console shows each line
    exactly once even though two JVMs execute the program."""
    source = """
        class Main {
            static void main(String[] args) {
                for (int i = 0; i < 6; i++) {
                    System.println("line " + i);
                }
            }
        }
    """
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy="lock_sync", hot_backup=True)
    machine.run("Main")
    assert env.console.lines() == [f"line {i}" for i in range(6)]
    assert machine.backup_metrics.outputs_reexecuted == 0


def test_hot_backup_single_threaded_thread_sched():
    """Single-threaded programs log no schedule records; the hot TS
    backup paces itself on native records alone."""
    source = """
        class Main {
            static void main(String[] args) {
                int t = System.currentTimeMillis();
                System.println("ok " + (t > 0));
            }
        }
    """
    env = Environment()
    machine = ReplicatedJVM(compile_program(source), env=env,
                            strategy="thread_sched", hot_backup=True)
    result = machine.run("Main")
    assert result.outcome == "primary_completed"
    assert machine.backup_jvm.state_digest() == \
        machine.primary_jvm.state_digest()
    assert env.console.lines() == ["ok true"]

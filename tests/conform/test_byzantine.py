"""Tier-2 wrapper around the Byzantine corruption sweep.

Same split as :mod:`tests.conform.test_conform_harness`: cheap
mechanics tests (report schema, reference probe, single cells) run in
tier-1; the heavier full-matrix and CLI sweeps carry ``conform`` +
``slow`` marks.  The byzantine sweep is fast — every workload is tiny —
so even the 'slow' cells finish in seconds.
"""

import json
import subprocess
import sys

import pytest

from repro.conform import (
    ByzantineConfig,
    build_byzantine_report,
    byzantine_reference,
    check_corruption,
    make_byzantine_spec,
    render_byzantine_report,
    run_byzantine_sweep,
    sweep_byzantine_cell,
)

REPORT_KEYS = {"version", "tool", "config", "cells", "totals", "ok"}
CELL_KEYS = {"workload", "engine", "variants", "digest_epochs",
             "output_ordinals", "cells", "failures", "ok"}


# ======================================================================
# Harness mechanics (cheap — runs in tier-1)
# ======================================================================
def test_byzantine_report_schema_keys():
    config = ByzantineConfig(workloads=["hello"])
    cells = run_byzantine_sweep(config)
    report = build_byzantine_report(config, cells)
    assert set(report) == REPORT_KEYS
    assert report["version"] == 1
    assert report["tool"] == "repro conform --byzantine"
    for cell in report["cells"]:
        assert set(cell) == CELL_KEYS
    assert report["totals"]["cells"] == len(cells) == 1
    assert report["totals"]["failures"] == 0
    assert report["ok"] is True
    assert "PASS" in render_byzantine_report(report)
    assert json.loads(json.dumps(report)) == report   # JSON-serialisable


def test_reference_probe_enumerates_artifacts():
    """The honest probe discovers the lie targets: every output the
    group gated, and the final digest epoch (0 for a single-threaded
    workload, where no schedule records are logged)."""
    reference = byzantine_reference(make_byzantine_spec("hello"))
    assert reference.final_epoch == 0
    assert len(reference.output_ordinals) >= 1
    assert reference.stable    # console output captured
    multi = byzantine_reference(make_byzantine_spec("counter"))
    assert multi.final_epoch > 0
    assert multi.digest_epochs  # periodic digests were certified


def test_single_corruption_cell_passes():
    """One seeded lying-proposer cell end to end: the corrupted output
    is outvoted before release and the run stays byte-identical."""
    spec = make_byzantine_spec("hello")
    reference = byzantine_reference(spec)
    entry = check_corruption(spec, reference,
                             ("output", reference.output_ordinals[0]), 0)
    assert entry is None
    entry = check_corruption(spec, reference,
                             ("digest", reference.final_epoch), 1)
    assert entry is None


# ======================================================================
# Tier-2: the sweeps themselves
# ======================================================================
@pytest.mark.conform
@pytest.mark.slow
@pytest.mark.parametrize("workload", ["hello", "counter", "fileio"])
def test_byzantine_sweep_has_zero_failures(workload):
    cell = sweep_byzantine_cell(make_byzantine_spec(workload))
    assert cell.ok, cell.as_dict()
    assert cell.cells > 0
    # Every artifact was lied about twice: once by the proposer, once
    # by a follower.
    assert cell.cells == 2 * (cell.digest_epochs + cell.output_ordinals)


@pytest.mark.conform
@pytest.mark.slow
@pytest.mark.parametrize("workload", ["hello", "counter"])
def test_byzantine_variants_sweep_passes(workload):
    spec = make_byzantine_spec(workload, variants="step+slice")
    cell = sweep_byzantine_cell(spec)
    assert cell.ok, cell.as_dict()


@pytest.mark.conform
@pytest.mark.slow
def test_byzantine_conform_cli_smoke(tmp_path):
    """The CI invocation: exit 0, valid JSON artifact, zero failures."""
    out = tmp_path / "byzantine.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "conform", "--byzantine",
         "--variants", "--json", str(out)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "PASS" in proc.stdout
    report = json.loads(out.read_text())
    assert report["ok"] is True
    assert report["totals"]["failures"] == 0
    assert report["config"]["variants"] == "step+slice"

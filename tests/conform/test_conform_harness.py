"""Tier-2 wrapper around the conformance sweep engine.

Everything here is marked ``conform`` and excluded from the default
(tier-1) run; execute with ``pytest -m conform``.  A couple of cheap
harness-mechanics tests (report schema, CLI plumbing, shrinker) stay
unmarked so tier-1 still exercises the machinery itself.
"""

import json
import subprocess
import sys

import pytest

from repro.conform import (
    SweepConfig,
    build_report,
    make_cell_spec,
    reference_run,
    render_report,
    run_sweep,
    shrink_failure,
    sweep_cell,
    workload_names,
    write_report,
)

REPORT_KEYS = {"version", "tool", "config", "cells", "totals", "ok"}
CELL_KEYS = {"workload", "strategy", "transport", "engine",
             "total_events", "crash_points", "failures", "ok"}


# ======================================================================
# Harness mechanics (cheap — runs in tier-1)
# ======================================================================
def test_report_schema_keys():
    config = SweepConfig(workloads=["hello"], transports=["memory"],
                         strategies=["lock_sync"])
    cells = run_sweep(config)
    report = build_report(config, cells)
    assert set(report) == REPORT_KEYS
    assert report["version"] == 1
    assert report["tool"] == "repro conform"
    for cell in report["cells"]:
        assert set(cell) == CELL_KEYS
    assert report["totals"]["cells"] == len(cells) == 1
    assert report["totals"]["failures"] == 0
    assert report["ok"] is True
    assert "PASS" in render_report(report)
    assert json.loads(json.dumps(report)) == report   # JSON-serialisable


def test_report_round_trips_through_file(tmp_path):
    config = SweepConfig(workloads=["hello"], transports=["memory"],
                         strategies=["lock_sync"], stride=3)
    report = build_report(config, run_sweep(config))
    path = tmp_path / "conform.json"
    write_report(str(path), report)
    assert json.loads(path.read_text()) == report


def test_stride_reduces_crash_points():
    spec = make_cell_spec("hello", "lock_sync", "memory")
    full = sweep_cell(spec)
    strided = sweep_cell(spec, stride=2)
    assert strided.total_events == full.total_events
    assert strided.crash_points == (full.total_events + 1) // 2
    assert full.ok and strided.ok


def test_shrinker_finds_earliest_failure():
    """Feed the shrinker a fabricated failure at the last crash point of
    a cell where *every* point 'fails' (a check that always trips would
    be a bug; here we just exercise the scan order)."""
    spec = make_cell_spec("hello", "lock_sync", "memory")
    reference = reference_run(spec)
    # Pretend only odd points were tried and the one at the end failed.
    tried = list(range(1, reference.total_events + 1, 2))
    failing = {"crash_at": tried[-1], "kind": "divergence", "detail": "x"}
    shrunk = shrink_failure(spec, reference, failing, tried)
    # No real failure exists below it, so the original entry survives
    # untouched (the shrinker only replaces on a reproduced failure).
    assert shrunk["crash_at"] == tried[-1]
    assert "shrunk_from" not in shrunk


def test_workload_registry_is_stable():
    assert tuple(workload_names()) == ("counter", "fileio", "hello")
    with pytest.raises(KeyError, match="counter"):
        from repro.conform import get_workload
        get_workload("nope")


# ======================================================================
# Tier-2: the sweeps themselves
# ======================================================================
@pytest.mark.conform
@pytest.mark.slow
@pytest.mark.parametrize("strategy", ["lock_sync", "thread_sched"])
@pytest.mark.parametrize("transport", ["memory", "faulty:flaky"])
def test_counter_sweep_has_zero_divergences(strategy, transport):
    spec = make_cell_spec("counter", strategy, transport)
    cell = sweep_cell(spec)
    assert cell.crash_points == cell.total_events > 0
    assert cell.failures == []


@pytest.mark.conform
@pytest.mark.slow
def test_full_quick_matrix_passes():
    config = SweepConfig(workloads=["hello", "counter"])
    report = build_report(config, run_sweep(config))
    assert report["ok"], render_report(report)
    assert report["totals"]["failures"] == 0
    assert report["totals"]["cells"] == 8


@pytest.mark.conform
@pytest.mark.slow
def test_conform_cli_quick_smoke(tmp_path):
    """The acceptance-criteria command: exit 0, valid JSON, zero
    failures."""
    out = tmp_path / "report.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "conform", "--workload", "counter",
         "--quick", "--json", str(out)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "PASS" in proc.stdout
    report = json.loads(out.read_text())
    assert report["ok"] is True
    assert report["totals"]["failures"] == 0


# ======================================================================
# Chained-failover sweeps (replica-group supervisor)
# ======================================================================
CHAIN_CELL_KEYS = {"workload", "strategy", "transport", "engine",
                   "depth", "checkpoint_interval", "crash_points",
                   "layers", "errors", "ok"}


def test_chained_report_schema_keys():
    from repro.conform import (
        ChainedConfig, build_chained_report, render_chained_report,
        run_chained_sweep,
    )
    config = ChainedConfig(workloads=["hello"], transports=["memory"],
                           strategies=["lock_sync"], depth=1, stride=4)
    cells = run_chained_sweep(config)
    report = build_chained_report(config, cells)
    assert set(report) == REPORT_KEYS
    assert report["tool"] == "repro conform --chained"
    for cell in report["cells"]:
        assert set(cell) == CHAIN_CELL_KEYS
        for layer in cell["layers"]:
            assert {"generation", "pinned", "total_events",
                    "transfer_events", "crash_points", "failures",
                    "records_fenced", "steady_checkpoints"} <= set(layer)
    assert report["ok"] is True
    assert "PASS" in render_chained_report(report)
    assert json.loads(json.dumps(report)) == report


@pytest.mark.conform
@pytest.mark.slow
@pytest.mark.parametrize("transport", ["memory", "faulty:flaky"])
def test_chained_counter_sweep_passes(transport):
    from repro.conform import make_chained_spec, sweep_chained_cell
    spec = make_chained_spec("counter", "lock_sync", transport, depth=2)
    cell = sweep_chained_cell(spec)
    assert cell.ok, cell.as_dict()
    assert cell.crash_points > 0
    assert len(cell.layers) == 2
    # Mid-transfer crash points were swept in every layer, and the
    # fenced-record probe proved stale-epoch records are discarded.
    for layer in cell.layers:
        assert layer.transfer_events >= 2
        assert layer.crash_points == layer.total_events
    assert any(layer.records_fenced > 0 for layer in cell.layers[1:])


@pytest.mark.conform
@pytest.mark.slow
def test_chained_conform_cli_smoke(tmp_path):
    """The CI invocation: pinned seed, exit 0, valid JSON artifact."""
    out = tmp_path / "chained.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "conform", "--chained",
         "--workload", "counter", "--strategy", "lock_sync",
         "--depth", "2", "--json", str(out)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "PASS" in proc.stdout
    report = json.loads(out.read_text())
    assert report["ok"] is True
    assert report["totals"]["failures"] == 0
    assert report["totals"]["records_fenced"] > 0

"""Ablation helper functions (fast, test-profile versions)."""

from repro.env.environment import Environment
from repro.harness.ablations import (
    buffering_sweep,
    coalesce_lock_records,
    tracking_sweep,
)
from repro.harness.costs import CostModel
from repro.replication.machine import ReplicatedJVM
from repro.replication.metrics import ReplicationMetrics
from repro.workloads import BY_NAME


def test_buffering_sweep_shapes():
    sweep = buffering_sweep(BY_NAME["db"], "test", batch_sizes=(1, 64))
    assert sweep[1]["records"] == sweep[64]["records"]
    assert sweep[1]["bytes"] == sweep[64]["bytes"]
    assert sweep[1]["messages"] > sweep[64]["messages"]
    assert sweep[1]["communication_cost"] > sweep[64]["communication_cost"]


def test_tracking_sweep_monotone():
    metrics = ReplicationMetrics()
    metrics.instructions = 10_000
    metrics.cf_changes = 2_000
    base = CostModel().base_time(metrics)
    sweep = tracking_sweep(metrics, base, charges=(0.0, 0.5, 1.0))
    assert sweep[0.0] < sweep[0.5] < sweep[1.0]
    # zero-charge still includes the per-branch tracking
    assert sweep[0.0] > 1.0


def test_coalesce_lock_records_counts_runs():
    from repro.replication.records import (
        IdMap, LockAcqRecord, encode,
    )
    records = [
        encode(IdMap(1, (0,), 1)),                 # ignored: not an acq
        encode(LockAcqRecord((0,), 1, 1, 1)),
        encode(LockAcqRecord((0,), 2, 1, 2)),      # same thread: one run
        encode(LockAcqRecord((0, 0), 1, 1, 3)),    # switch
        encode(LockAcqRecord((0,), 3, 1, 4)),      # switch back
    ]
    count, intervals = coalesce_lock_records(records)
    assert count == 4
    assert intervals == 3


def test_coalesce_on_real_run():
    workload = BY_NAME["mtrt"]
    env = Environment()
    workload.prepare_env(env, "test")
    machine = ReplicatedJVM(workload.compile("test"), env=env,
                            strategy="lock_sync")
    machine.run(workload.main_class)
    machine.channel.flush()
    count, intervals = coalesce_lock_records(machine.channel.backup_log())
    assert count > 0
    assert 0 < intervals <= count

"""Experiment runner: five configurations, cross-checks, caching."""

import pytest

from repro.harness import runner as runner_mod
from repro.harness.runner import get_run, run_workload
from repro.harness.tables import (
    fig2_data,
    fig3_data,
    fig4_data,
    render_fig2,
    render_fig3,
    render_fig4,
    render_table2,
    table2_data,
)
from repro.workloads import BY_NAME


@pytest.fixture(scope="module")
def db_run():
    runner_mod.clear_cache()
    return get_run("db", "test")


def test_run_workload_produces_all_five_configs(db_run):
    assert db_run.baseline.instructions > 0
    assert db_run.lock_sync.primary.lock_records > 0
    assert db_run.lock_sync.backup.records_replayed > 0
    assert db_run.thread_sched.primary.instructions > 0
    assert db_run.thread_sched.backup.records_replayed > 0


def test_backup_digests_match(db_run):
    assert db_run.lock_sync.backup_digest_matches
    assert db_run.thread_sched.backup_digest_matches


def test_replicated_output_matches_baseline(db_run):
    assert db_run.lock_sync.primary_console == db_run.baseline_console
    assert db_run.thread_sched.primary_console == db_run.baseline_console


def test_cache_returns_same_object(db_run):
    assert get_run("db", "test") is db_run
    runner_mod.clear_cache()
    assert get_run("db", "test") is not db_run


def test_tables_render_with_partial_runs():
    runner_mod.clear_cache()
    runs = {name: get_run(name, "test") for name in BY_NAME}
    t2 = render_table2(runs)
    assert "Locks Acquired" in t2 and "mpegaudio" in t2
    for renderer in (render_fig2, render_fig3, render_fig4):
        text = renderer(runs)
        assert "jess" in text

    data2 = table2_data(runs)
    assert data2["db"]["locks_acquired"] > data2["compress"]["locks_acquired"]

    f2 = fig2_data(runs)
    for name, bars in f2.items():
        for bar, value in bars.items():
            assert value >= 0.99, (name, bar)  # at least baseline cost

    f3 = fig3_data(runs)
    f4 = fig4_data(runs)
    for name in BY_NAME:
        assert f3[name]["total"] == pytest.approx(
            sum(v for k, v in f3[name].items() if k != "total"), rel=1e-6
        )
        assert f4[name]["rescheduling"] >= 0

"""Cost model arithmetic and table rendering."""

import pytest

from repro.harness.costs import DEFAULT_COST_MODEL, CostModel
from repro.harness.tables import averages, render_table
from repro.replication.metrics import ReplicationMetrics


def _metrics(**kw):
    m = ReplicationMetrics()
    for key, value in kw.items():
        setattr(m, key, value)
    return m


def test_base_time_weights_heavy_ops_and_natives():
    model = CostModel()
    plain = model.base_time(_metrics(instructions=1000))
    heavy = model.base_time(_metrics(instructions=1000, heavy_ops=500))
    nativ = model.base_time(_metrics(instructions=1000, native_calls=10))
    assert plain == 1000
    assert heavy == 1000 + 500 * model.heavy_extra
    assert nativ == 1000 + 10 * model.native_call


def test_lock_sync_breakdown_components():
    model = CostModel()
    m = _metrics(
        instructions=1000, lock_records=10, id_maps=2,
        messages_sent=3, bytes_sent=100, ack_waits=1,
        natives_intercepted=4, native_result_records=4, se_records=1,
    )
    b = model.primary_breakdown(m, "lock_sync")
    assert b["base"] == 1000
    assert b["communication"] == 3 * model.msg_fixed + 100 * model.per_byte
    assert b["pessimistic"] == model.ack_rtt
    assert b["lock_acquire"] == 12 * model.lock_record
    assert "rescheduling" not in b
    assert b["misc"] > 0


def test_thread_sched_breakdown_has_tracking_cost():
    model = CostModel()
    m = _metrics(instructions=1000, cf_changes=200, schedule_records=5)
    b = model.primary_breakdown(m, "thread_sched")
    assert b["rescheduling"] == 5 * model.sched_record
    expected_tracking = (1000 * model.per_instr_tracking
                         + 200 * model.per_cf_tracking)
    assert b["misc"] == pytest.approx(expected_tracking)
    assert "lock_acquire" not in b


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        CostModel().primary_breakdown(_metrics(), "quantum")


def test_backup_time_charges_replay():
    model = CostModel()
    m = _metrics(instructions=1000, records_replayed=10)
    assert model.backup_time(m) == 1000 + 10 * model.replay_record


def test_primary_time_is_breakdown_sum():
    model = DEFAULT_COST_MODEL
    m = _metrics(instructions=500, lock_records=5, messages_sent=1,
                 bytes_sent=50)
    assert model.primary_time(m, "lock_sync") == pytest.approx(
        sum(model.primary_breakdown(m, "lock_sync").values())
    )


def test_render_table_alignment():
    text = render_table("Title", ["Name", "A", "B"],
                        [["row1", 1, 2.5], ["longer-row", 30, 4]])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert lines[2].startswith("-")        # separator under the header
    assert "row1" in lines[3]
    assert "2.50" in lines[3]
    assert "longer-row" in lines[4]


def test_averages():
    data = {w: {"total": i + 1.0} for i, w in enumerate(
        ("jess", "jack", "compress", "db", "mpegaudio", "mtrt"))}
    assert averages(data, "total") == pytest.approx(3.5)
